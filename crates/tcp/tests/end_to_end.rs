//! End-to-end transport tests: full TCP dynamics over the simulator.
//!
//! Connections are built through the default flow-slab hosting; the
//! `sender_*` accessors read per-flow state back regardless of mode, and
//! `slab_and_legacy_modes_agree` pins the two hostings to identical
//! dynamics.

use netsim::prelude::*;
use netsim::queue::QueueDiscipline;
use pert_tcp::{
    connect, connect_with_source, sender_samples, sender_stats, sender_stopped, ConnectionSpec,
    Finite,
};

/// Dumbbell: n0 — bottleneck — n1; returns (sim, n0, n1, forward link id).
fn dumbbell(
    capacity_bps: u64,
    delay: SimDuration,
    queue: impl Fn(usize) -> Box<dyn QueueDiscipline>,
    seed: u64,
) -> (Simulator, NodeId, NodeId, LinkId) {
    let mut sim = Simulator::new(seed);
    let a = sim.add_node();
    let b = sim.add_node();
    let (f, _r) = sim.add_duplex_link(a, b, capacity_bps, delay, |d| queue(d));
    sim.compute_routes();
    (sim, a, b, f)
}

#[test]
fn sack_fills_the_link() {
    // 10 Mbps, 20 ms RTT, ample buffer: one SACK flow should reach ≳90%
    // utilization after slow start.
    let (mut sim, a, b, fwd) = dumbbell(
        10_000_000,
        SimDuration::from_millis(10),
        |_| Box::new(DropTail::new(100)),
        1,
    );
    let conn = connect(&mut sim, ConnectionSpec::sack(FlowId(0), a, b, 1));
    sim.schedule_agent_timer(SimTime::ZERO, conn.sender, conn.start_token);
    sim.run_until(SimTime::from_secs_f64(5.0));
    sim.reset_measurements();
    sim.run_until(SimTime::from_secs_f64(15.0));
    let util = sim
        .link(fwd)
        .utilization_percent(SimDuration::from_secs(10));
    assert!(util > 90.0, "utilization {util}%");
}

#[test]
fn sack_recovers_from_buffer_overflow_losses() {
    // Tiny buffer forces periodic loss; the flow must keep making progress
    // and actually retransmit.
    let (mut sim, a, b, _fwd) = dumbbell(
        10_000_000,
        SimDuration::from_millis(10),
        |_| Box::new(DropTail::new(10)),
        2,
    );
    let conn = connect(&mut sim, ConnectionSpec::sack(FlowId(0), a, b, 2));
    sim.schedule_agent_timer(SimTime::ZERO, conn.sender, conn.start_token);
    sim.run_until(SimTime::from_secs_f64(20.0));
    let stats = sender_stats(&sim, &conn);
    assert!(
        !sim.trace.drops.is_empty(),
        "expected drops with a 10-pkt buffer"
    );
    assert!(stats.retransmits > 0, "no retransmissions despite drops");
    assert!(stats.loss_events > 0);
    // Goodput sanity: ≥ 70% of the link over 20 s (10 Mbps = 1250 seg/s).
    assert!(
        stats.acked_segments > 17_000,
        "acked only {}",
        stats.acked_segments
    );
}

#[test]
fn delivery_is_reliable_and_in_order() {
    // A finite 5000-segment transfer over a lossy bottleneck must deliver
    // every segment exactly (cumulative ack reaches the limit).
    let (mut sim, a, b, _f) = dumbbell(
        5_000_000,
        SimDuration::from_millis(5),
        |_| Box::new(DropTail::new(8)),
        3,
    );
    let conn = connect_with_source(
        &mut sim,
        ConnectionSpec::sack(FlowId(0), a, b, 3),
        Box::new(Finite::new(5000)),
    );
    sim.schedule_agent_timer(SimTime::ZERO, conn.sender, conn.start_token);
    sim.run_until(SimTime::from_secs_f64(60.0));
    assert_eq!(sender_stats(&sim, &conn).acked_segments, 5000);
    assert!(sender_stopped(&sim, &conn), "finite flow should finish");
    let sink: &pert_tcp::TcpSink = sim.agent(conn.sink);
    assert_eq!(sink.stats.rcv_next, 5000);
}

#[test]
fn pert_keeps_queue_and_drops_low() {
    // 10 Mbps, 60 ms RTT, buffer = BDP (75 pkts). PERT should hold the
    // average queue well below DropTail-SACK and avoid (nearly all) drops.
    let run = |spec: fn(FlowId, NodeId, NodeId, u64) -> ConnectionSpec| {
        let (mut sim, a, b, fwd) = dumbbell(
            10_000_000,
            SimDuration::from_millis(30),
            |_| Box::new(DropTail::new(75)),
            4,
        );
        for i in 0..4u64 {
            let c = connect(&mut sim, spec(FlowId(i as usize), a, b, i + 10));
            sim.schedule_agent_timer(
                SimTime::from_secs_f64(i as f64 * 0.5),
                c.sender,
                c.start_token,
            );
        }
        sim.run_until(SimTime::from_secs_f64(20.0));
        sim.reset_measurements();
        sim.run_until(SimTime::from_secs_f64(60.0));
        sim.flush_measurements();
        let link = sim.link(fwd);
        let span = SimTime::from_secs_f64(60.0).duration_since(SimTime::from_secs_f64(20.0));
        let mean_q = link
            .queue
            .stats()
            .mean_len(SimTime::from_secs_f64(20.0), SimTime::from_secs_f64(60.0));
        let drops = link.queue.stats().dropped;
        let util = link.utilization_percent(span);
        (mean_q, drops, util)
    };

    let (q_sack, drops_sack, util_sack) = run(ConnectionSpec::sack);
    let (q_pert, drops_pert, util_pert) = run(ConnectionSpec::pert);

    assert!(
        q_pert < q_sack * 0.6,
        "PERT queue {q_pert:.1} not ≪ SACK queue {q_sack:.1}"
    );
    assert!(
        drops_pert * 10 <= drops_sack.max(10),
        "PERT drops {drops_pert} vs SACK {drops_sack}"
    );
    assert!(util_pert > 80.0, "PERT utilization {util_pert}%");
    assert!(util_sack > 90.0, "SACK utilization {util_sack}%");
}

#[test]
fn vegas_holds_small_backlog() {
    let (mut sim, a, b, fwd) = dumbbell(
        10_000_000,
        SimDuration::from_millis(30),
        |_| Box::new(DropTail::new(75)),
        5,
    );
    let c = connect(&mut sim, ConnectionSpec::vegas(FlowId(0), a, b, 5));
    sim.schedule_agent_timer(SimTime::ZERO, c.sender, c.start_token);
    sim.run_until(SimTime::from_secs_f64(10.0));
    sim.reset_measurements();
    sim.run_until(SimTime::from_secs_f64(30.0));
    sim.flush_measurements();
    let link = sim.link(fwd);
    let mean_q = link
        .queue
        .stats()
        .mean_len(SimTime::from_secs_f64(10.0), SimTime::from_secs_f64(30.0));
    // A single Vegas flow targets 1–3 packets of backlog.
    assert!(mean_q < 8.0, "Vegas mean queue {mean_q}");
    assert_eq!(link.queue.stats().dropped, 0);
    let util = link.utilization_percent(SimDuration::from_secs(20));
    assert!(util > 85.0, "Vegas utilization {util}%");
}

#[test]
fn ecn_with_red_avoids_drops() {
    // SACK-ECN through a RED-ECN bottleneck: marks instead of drops.
    let capacity_pps = 10_000_000.0 / 8000.0;
    let (mut sim, a, b, fwd) = dumbbell(
        10_000_000,
        SimDuration::from_millis(30),
        |_| {
            Box::new(RedQueue::adaptive(
                RedParams::recommended(75, capacity_pps, true, 9),
                AdaptiveRedParams::default(),
            ))
        },
        6,
    );
    for i in 0..4u64 {
        let c = connect(
            &mut sim,
            ConnectionSpec::sack_ecn(FlowId(i as usize), a, b, i),
        );
        sim.schedule_agent_timer(
            SimTime::from_secs_f64(i as f64 * 0.3),
            c.sender,
            c.start_token,
        );
    }
    sim.run_until(SimTime::from_secs_f64(10.0));
    sim.reset_measurements();
    sim.run_until(SimTime::from_secs_f64(40.0));
    sim.flush_measurements();
    let link = sim.link(fwd);
    assert!(link.queue.stats().marked > 0, "RED never marked");
    // ECN converts congestion signals to marks; only the rare excursion
    // beyond RED's hard-drop region may still drop.
    let stats = link.queue.stats();
    assert!(
        stats.dropped * 20 < stats.marked,
        "drops {} not rare vs marks {}",
        stats.dropped,
        stats.marked
    );
    assert!(stats.drop_rate() < 0.001, "drop rate {}", stats.drop_rate());
    let util = link.utilization_percent(SimDuration::from_secs(30));
    assert!(util > 85.0, "utilization {util}%");
}

#[test]
fn identical_seeds_reproduce_exactly() {
    let run = || {
        let (mut sim, a, b, _f) = dumbbell(
            5_000_000,
            SimDuration::from_millis(20),
            |_| Box::new(DropTail::new(30)),
            7,
        );
        for i in 0..3u64 {
            let c = connect(&mut sim, ConnectionSpec::pert(FlowId(i as usize), a, b, i));
            sim.schedule_agent_timer(
                SimTime::from_secs_f64(i as f64 * 0.1),
                c.sender,
                c.start_token,
            );
        }
        sim.run_until(SimTime::from_secs_f64(15.0));
        (
            sim.events_processed(),
            sim.trace.drops.len(),
            sim.link(LinkId(0)).delivered_bits,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn delayed_acks_halve_ack_traffic_without_breaking_reliability() {
    let (mut sim, a, b, _f) = dumbbell(
        10_000_000,
        SimDuration::from_millis(10),
        |_| Box::new(DropTail::new(50)),
        9,
    );
    let mut spec = ConnectionSpec::sack(FlowId(0), a, b, 9);
    spec.delack = Some(SimDuration::from_millis(100));
    let conn = connect_with_source(&mut sim, spec, Box::new(Finite::new(3000)));
    sim.schedule_agent_timer(SimTime::ZERO, conn.sender, conn.start_token);
    sim.run_until(SimTime::from_secs_f64(30.0));
    assert_eq!(
        sender_stats(&sim, &conn).acked_segments,
        3000,
        "reliability broken"
    );
    let sink: &pert_tcp::TcpSink = sim.agent(conn.sink);
    assert_eq!(sink.stats.rcv_next, 3000);
    // ACK traffic on the reverse link should be roughly halved: ~1 ACK per
    // 2 data segments (allow slack for timer ACKs and recovery).
    let acks = sim.link(LinkId(1)).delivered_pkts;
    assert!(
        acks < 2200,
        "delayed ACKs sent {acks} ACKs for 3000 segments"
    );
    assert!(acks > 1400);
}

#[test]
fn per_ack_samples_are_recorded_when_requested() {
    let (mut sim, a, b, _f) = dumbbell(
        10_000_000,
        SimDuration::from_millis(10),
        |_| Box::new(DropTail::new(50)),
        8,
    );
    let c = connect(
        &mut sim,
        ConnectionSpec::sack(FlowId(0), a, b, 8).with_samples(),
    );
    sim.schedule_agent_timer(SimTime::ZERO, c.sender, c.start_token);
    sim.run_until(SimTime::from_secs_f64(3.0));
    let samples = sender_samples(&sim, &c);
    assert!(!samples.is_empty());
    // Samples are (time, rtt, cwnd) with sane ranges.
    for smp in samples {
        assert!(smp.rtt >= 0.020, "rtt below propagation: {}", smp.rtt);
        assert!(smp.cwnd >= 1.0);
    }
    // One sample per ACK ≈ one per acked segment.
    assert!(samples.len() as u64 >= sender_stats(&sim, &c).acked_segments / 2);
}

#[test]
fn cubic_fills_the_link() {
    // One CUBIC flow over 10 Mbps / 20 ms RTT with a BDP buffer: HyStart
    // exits slow start before overshoot and the cubic window keeps the
    // pipe full.
    let (mut sim, a, b, fwd) = dumbbell(
        10_000_000,
        SimDuration::from_millis(10),
        |_| Box::new(DropTail::new(50)),
        21,
    );
    let conn = connect(&mut sim, ConnectionSpec::cubic(FlowId(0), a, b, 21));
    sim.schedule_agent_timer(SimTime::ZERO, conn.sender, conn.start_token);
    sim.run_until(SimTime::from_secs_f64(5.0));
    sim.reset_measurements();
    sim.run_until(SimTime::from_secs_f64(15.0));
    let util = sim
        .link(fwd)
        .utilization_percent(SimDuration::from_secs(10));
    assert!(util > 90.0, "CUBIC utilization {util}%");
}

#[test]
fn bbr_fills_the_link_without_standing_queue() {
    // BBR paces at the estimated bottleneck bandwidth: high utilization
    // with a mean queue far below what a loss-based probe would build.
    let (mut sim, a, b, fwd) = dumbbell(
        10_000_000,
        SimDuration::from_millis(30),
        |_| Box::new(DropTail::new(150)),
        22,
    );
    let conn = connect(&mut sim, ConnectionSpec::bbr(FlowId(0), a, b, 22));
    sim.schedule_agent_timer(SimTime::ZERO, conn.sender, conn.start_token);
    sim.run_until(SimTime::from_secs_f64(10.0));
    sim.reset_measurements();
    sim.run_until(SimTime::from_secs_f64(40.0));
    sim.flush_measurements();
    let link = sim.link(fwd);
    let util = link.utilization_percent(SimDuration::from_secs(30));
    let mean_q = link
        .queue
        .stats()
        .mean_len(SimTime::from_secs_f64(10.0), SimTime::from_secs_f64(40.0));
    assert!(util > 80.0, "BBR utilization {util}%");
    // 150-pkt buffer = 2 BDP; BBR should sit well under half of it.
    assert!(mean_q < 75.0, "BBR standing queue {mean_q} pkts");
}

/// Tests that toggle the process-wide hosting flag take this lock so the
/// parallel test runner can't interleave their toggles.
static HOSTING_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Run one flow of `spec` for 15 s in the given hosting and return its
/// observable trajectory.
fn one_flow_trajectory(
    legacy: bool,
    spec: impl Fn(FlowId, NodeId, NodeId, u64) -> ConnectionSpec,
) -> (u64, usize, u64, u64, u64) {
    pert_tcp::set_legacy_agents(legacy);
    let (mut sim, a, b, _f) = dumbbell(
        10_000_000,
        SimDuration::from_millis(10),
        |_| Box::new(DropTail::new(40)),
        23,
    );
    let mut c = spec(FlowId(0), a, b, 23);
    // Delayed ACKs make every ACK a stretch ACK, so the slow-start to
    // congestion-avoidance crossover credit split is on the hot path.
    c.delack = Some(SimDuration::from_millis(100));
    let conn = connect(&mut sim, c);
    sim.schedule_agent_timer(SimTime::ZERO, conn.sender, conn.start_token);
    sim.run_until(SimTime::from_secs_f64(15.0));
    let stats = sender_stats(&sim, &conn);
    pert_tcp::set_legacy_agents(false);
    (
        sim.events_processed(),
        sim.trace.drops.len(),
        stats.acked_segments,
        stats.retransmits,
        stats.loss_events,
    )
}

/// Regression for the RFC 5681 §3.1 stretch-ACK crossover fix: under
/// delayed ACKs the Reno window must grow identically in the slab and
/// legacy hostings, and the flow must still fill the link (pre-fix, the
/// whole stretch ACK was credited as slow start, over-inflating cwnd).
#[test]
fn stretch_ack_crossover_agrees_in_both_hostings() {
    let _guard = HOSTING_LOCK.lock().unwrap();
    let slab = one_flow_trajectory(false, ConnectionSpec::sack);
    let legacy = one_flow_trajectory(true, ConnectionSpec::sack);
    assert_eq!(slab, legacy);
    // 10 Mbps for ~15 s is ≥ 18 750 segments at full rate; require most.
    assert!(slab.2 > 15_000, "acked only {} segments", slab.2);
}

/// The new schemes ride the same dual-hosting machinery: CUBIC and BBR
/// trajectories must be identical in slab and legacy modes.
#[test]
fn cubic_and_bbr_agree_in_both_hostings() {
    let _guard = HOSTING_LOCK.lock().unwrap();
    assert_eq!(
        one_flow_trajectory(false, ConnectionSpec::cubic),
        one_flow_trajectory(true, ConnectionSpec::cubic)
    );
    assert_eq!(
        one_flow_trajectory(false, ConnectionSpec::bbr),
        one_flow_trajectory(true, ConnectionSpec::bbr)
    );
}

/// The slab and legacy hostings must be observationally identical: same
/// event count, same drop trace, same delivered bits, same per-flow
/// statistics — for the same seeds.
#[test]
fn slab_and_legacy_modes_agree() {
    let _guard = HOSTING_LOCK.lock().unwrap();
    let run = |legacy: bool| {
        pert_tcp::set_legacy_agents(legacy);
        let (mut sim, a, b, _f) = dumbbell(
            5_000_000,
            SimDuration::from_millis(20),
            |_| Box::new(DropTail::new(30)),
            11,
        );
        let mut conns = Vec::new();
        for i in 0..3u64 {
            let c = connect(&mut sim, ConnectionSpec::pert(FlowId(i as usize), a, b, i));
            sim.schedule_agent_timer(
                SimTime::from_secs_f64(i as f64 * 0.1),
                c.sender,
                c.start_token,
            );
            conns.push(c);
        }
        sim.run_until(SimTime::from_secs_f64(15.0));
        pert_tcp::set_legacy_agents(false);
        let per_flow: Vec<(u64, u64, u64)> = conns
            .iter()
            .map(|c| {
                let s = sender_stats(&sim, c);
                (s.acked_segments, s.retransmits, s.loss_events)
            })
            .collect();
        (
            sim.events_processed(),
            sim.trace.drops.len(),
            sim.link(LinkId(0)).delivered_bits,
            per_flow,
        )
    };
    assert_eq!(run(false), run(true));
}
