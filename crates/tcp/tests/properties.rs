//! Property-based tests for the SACK scoreboard and sink reassembly.

use netsim::SackBlock;
use pert_tcp::Scoreboard;
use proptest::prelude::*;

/// A random but causally valid operation sequence on a scoreboard.
#[derive(Clone, Debug)]
enum Op {
    SendNew,
    AckTo(u64),
    Sack { start: u64, len: u64 },
    DeclareLosses,
    RetransmitFirst,
    MarkAllLost,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => Just(Op::SendNew),
        2 => (0u64..100).prop_map(Op::AckTo),
        3 => (0u64..100, 1u64..8).prop_map(|(start, len)| Op::Sack { start, len }),
        2 => Just(Op::DeclareLosses),
        2 => Just(Op::RetransmitFirst),
        1 => Just(Op::MarkAllLost),
    ]
}

proptest! {
    /// Under any valid operation sequence the scoreboard's partition
    /// invariant holds: in_flight + sacked + lost == tracked, and the
    /// cumulative-ACK frontier only moves forward.
    #[test]
    fn scoreboard_partition_invariant(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let mut sb = Scoreboard::new();
        let mut next_seq = 0u64;
        let mut high_ack = 0u64;
        for op in ops {
            match op {
                Op::SendNew => {
                    // Only send if not already tracked (mirrors the sender).
                    sb.on_send_new(next_seq);
                    next_seq += 1;
                }
                Op::AckTo(raw) => {
                    let cum = (high_ack + raw % 10).min(next_seq);
                    if cum > high_ack {
                        let removed = sb.ack_to(cum);
                        prop_assert!(removed <= cum - high_ack);
                        high_ack = cum;
                    }
                }
                Op::Sack { start, len } => {
                    let s = high_ack + start % 20;
                    let e = (s + len).min(next_seq);
                    if s < e {
                        sb.sack(SackBlock { start: s, end: e });
                    }
                }
                Op::DeclareLosses => {
                    sb.declare_losses();
                }
                Op::RetransmitFirst => {
                    if let Some(seq) = sb.first_lost() {
                        sb.on_retransmit(seq);
                        prop_assert!(seq >= high_ack);
                    }
                }
                Op::MarkAllLost => {
                    sb.mark_all_lost();
                }
            }
            prop_assert_eq!(
                sb.in_flight() + sb.sacked_count() + sb.lost_count(),
                sb.len(),
                "partition violated"
            );
            prop_assert!(sb.len() as u64 <= next_seq - high_ack);
        }
    }

    /// After acking everything ever sent, the scoreboard is empty.
    #[test]
    fn full_ack_empties_scoreboard(
        n in 1u64..200,
        sacks in proptest::collection::vec((0u64..200, 1u64..10), 0..20),
    ) {
        let mut sb = Scoreboard::new();
        for s in 0..n {
            sb.on_send_new(s);
        }
        for (start, len) in sacks {
            let s = start % n;
            let e = (s + len).min(n);
            sb.sack(SackBlock { start: s, end: e });
        }
        sb.declare_losses();
        while let Some(seq) = sb.first_lost() {
            sb.on_retransmit(seq);
        }
        let removed = sb.ack_to(n);
        prop_assert_eq!(removed, n);
        prop_assert!(sb.is_empty());
        prop_assert_eq!(sb.in_flight(), 0);
        prop_assert_eq!(sb.lost_count(), 0);
    }
}
