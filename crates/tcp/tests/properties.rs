//! Property-based tests for the SACK scoreboard, sink reassembly, and
//! the congestion-control zoo's window invariants.

use netsim::SackBlock;
use pert_core::pert::PertParams;
use pert_core::pi::PertPiParams;
use pert_core::rem::PertRemParams;
use pert_tcp::{
    Bbr, CcAction, CcAlgorithm, CcContext, Cubic, PertCc, PertPiCc, PertRemCc, Reno, Scoreboard,
    Vegas,
};
use proptest::prelude::*;

/// A random but causally valid operation sequence on a scoreboard.
#[derive(Clone, Debug)]
enum Op {
    SendNew,
    AckTo(u64),
    Sack { start: u64, len: u64 },
    DeclareLosses,
    RetransmitFirst,
    MarkAllLost,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => Just(Op::SendNew),
        2 => (0u64..100).prop_map(Op::AckTo),
        3 => (0u64..100, 1u64..8).prop_map(|(start, len)| Op::Sack { start, len }),
        2 => Just(Op::DeclareLosses),
        2 => Just(Op::RetransmitFirst),
        1 => Just(Op::MarkAllLost),
    ]
}

proptest! {
    /// Under any valid operation sequence the scoreboard's partition
    /// invariant holds: in_flight + sacked + lost == tracked, and the
    /// cumulative-ACK frontier only moves forward.
    #[test]
    fn scoreboard_partition_invariant(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let mut sb = Scoreboard::new();
        let mut next_seq = 0u64;
        let mut high_ack = 0u64;
        for op in ops {
            match op {
                Op::SendNew => {
                    // Only send if not already tracked (mirrors the sender).
                    sb.on_send_new(next_seq);
                    next_seq += 1;
                }
                Op::AckTo(raw) => {
                    let cum = (high_ack + raw % 10).min(next_seq);
                    if cum > high_ack {
                        let removed = sb.ack_to(cum);
                        prop_assert!(removed <= cum - high_ack);
                        high_ack = cum;
                    }
                }
                Op::Sack { start, len } => {
                    let s = high_ack + start % 20;
                    let e = (s + len).min(next_seq);
                    if s < e {
                        sb.sack(SackBlock { start: s, end: e });
                    }
                }
                Op::DeclareLosses => {
                    sb.declare_losses();
                }
                Op::RetransmitFirst => {
                    if let Some(seq) = sb.first_lost() {
                        sb.on_retransmit(seq);
                        prop_assert!(seq >= high_ack);
                    }
                }
                Op::MarkAllLost => {
                    sb.mark_all_lost();
                }
            }
            prop_assert_eq!(
                sb.in_flight() + sb.sacked_count() + sb.lost_count(),
                sb.len(),
                "partition violated"
            );
            prop_assert!(sb.len() as u64 <= next_seq - high_ack);
        }
    }

    /// After acking everything ever sent, the scoreboard is empty.
    #[test]
    fn full_ack_empties_scoreboard(
        n in 1u64..200,
        sacks in proptest::collection::vec((0u64..200, 1u64..10), 0..20),
    ) {
        let mut sb = Scoreboard::new();
        for s in 0..n {
            sb.on_send_new(s);
        }
        for (start, len) in sacks {
            let s = start % n;
            let e = (s + len).min(n);
            sb.sack(SackBlock { start: s, end: e });
        }
        sb.declare_losses();
        while let Some(seq) = sb.first_lost() {
            sb.on_retransmit(seq);
        }
        let removed = sb.ack_to(n);
        prop_assert_eq!(removed, n);
        prop_assert!(sb.is_empty());
        prop_assert_eq!(sb.in_flight(), 0);
        prop_assert_eq!(sb.lost_count(), 0);
    }
}

// --- Congestion-control zoo invariants ---------------------------------

/// The sender's configured window ceiling in the harness below.
const MAX_CWND: f64 = 1e6;

/// One event in the sender's congestion-control protocol. The harness
/// below replays these against each algorithm exactly the way
/// `sender.rs` does — same hook order, same clamps — so the property
/// covers the trait contract every hosting relies on.
#[derive(Clone, Debug)]
enum CcOp {
    /// In-sequence ACK of `newly` segments with the given RTT.
    Ack { newly: u64, rtt_us: u64 },
    /// A loss event entering fast recovery.
    Loss,
    /// An ECN mark outside recovery.
    Ecn,
    /// A retransmission timeout.
    Rto,
    /// An ACK that arrives during recovery.
    RecoveryAck { newly: u64, rtt_us: u64 },
    /// The cumulative ACK crossing the recovery point.
    RecoveryExit,
}

fn cc_op_strategy() -> impl Strategy<Value = CcOp> {
    prop_oneof![
        8 => (1u64..5, 100u64..200_000).prop_map(|(newly, rtt_us)| CcOp::Ack { newly, rtt_us }),
        2 => Just(CcOp::Loss),
        1 => Just(CcOp::Ecn),
        1 => Just(CcOp::Rto),
        4 => (1u64..5, 100u64..200_000)
            .prop_map(|(newly, rtt_us)| CcOp::RecoveryAck { newly, rtt_us }),
        2 => Just(CcOp::RecoveryExit),
    ]
}

/// Every algorithm in the zoo, freshly constructed.
fn cc_zoo(seed: u64) -> Vec<(&'static str, Box<dyn CcAlgorithm>)> {
    vec![
        ("reno", Box::new(Reno::new())),
        ("vegas", Box::new(Vegas::new())),
        (
            "pert",
            Box::new(PertCc::with_params(PertParams::default(), seed)),
        ),
        (
            "pert-pi",
            Box::new(PertPiCc::new(
                PertPiParams::from_router_pi(1.822e-5, 1.816e-5, 1_000.0, 0.003),
                seed,
            )),
        ),
        (
            "pert-rem",
            Box::new(PertRemCc::new(PertRemParams::default(), seed)),
        ),
        ("cubic", Box::new(Cubic::new(seed))),
        ("bbr", Box::new(Bbr::new(seed))),
    ]
}

/// Replay `ops` against one algorithm through the sender's protocol and
/// check the window invariants after every event.
fn drive_cc(name: &str, cc: &mut dyn CcAlgorithm, ops: &[CcOp]) {
    let mut cwnd = 2.0_f64;
    let mut ssthresh = 64.0_f64;
    let mut now = 0.0_f64;
    let mut in_recovery = false;
    for op in ops {
        now += 0.01;
        let in_flight = cwnd.clamp(1.0, MAX_CWND) as u64;
        // Remap protocol-inconsistent draws so recovery hooks are only
        // exercised in the states the sender can reach.
        let op = match op {
            CcOp::Ack { newly, rtt_us } if in_recovery => CcOp::RecoveryAck {
                newly: *newly,
                rtt_us: *rtt_us,
            },
            CcOp::RecoveryAck { newly, rtt_us } if !in_recovery => CcOp::Ack {
                newly: *newly,
                rtt_us: *rtt_us,
            },
            other => other.clone(),
        };
        match op {
            CcOp::Ack { newly, rtt_us } => {
                let rtt = rtt_us as f64 * 1e-6;
                let mut ctx = CcContext {
                    now,
                    rtt,
                    owd: rtt / 2.0,
                    newly_acked: newly,
                    in_flight,
                    cwnd: &mut cwnd,
                    ssthresh: &mut ssthresh,
                };
                match cc.on_ack(&mut ctx) {
                    CcAction::None => {}
                    CcAction::EarlyReduce { factor } => {
                        prop_assert!(
                            (0.0..1.0).contains(&factor),
                            "{name}: early-reduce factor {factor} out of [0, 1)"
                        );
                        let reduced = cwnd * (1.0 - factor);
                        ssthresh = reduced.max(2.0);
                        cwnd = reduced.max(1.0);
                    }
                }
                cwnd = cwnd.clamp(1.0, MAX_CWND);
            }
            CcOp::Loss if !in_recovery => {
                let factor = cc.loss_reduction();
                prop_assert!(
                    (0.0..1.0).contains(&factor),
                    "{name}: loss_reduction {factor} out of [0, 1)"
                );
                let prior = cwnd;
                ssthresh = (cwnd * (1.0 - factor)).max(2.0);
                if !cc.governs_recovery() {
                    cwnd = ssthresh;
                }
                cc.on_congestion_event(now, prior, in_flight);
                cc.on_recovery_start(now, in_flight);
                in_recovery = true;
            }
            CcOp::Ecn if !in_recovery => {
                let factor = cc.loss_reduction();
                let prior = cwnd;
                ssthresh = (cwnd * (1.0 - factor)).max(2.0);
                cwnd = ssthresh;
                cc.on_congestion_event(now, prior, in_flight);
            }
            CcOp::Rto => {
                let prior = cwnd;
                ssthresh = (cwnd / 2.0).max(2.0);
                cwnd = 1.0;
                cc.on_congestion_event(now, prior, in_flight);
                in_recovery = true;
            }
            CcOp::RecoveryAck { newly, rtt_us } => {
                let rtt = rtt_us as f64 * 1e-6;
                let mut ctx = CcContext {
                    now,
                    rtt,
                    owd: rtt / 2.0,
                    newly_acked: newly,
                    in_flight,
                    cwnd: &mut cwnd,
                    ssthresh: &mut ssthresh,
                };
                cc.on_recovery_ack(&mut ctx);
                cc.on_rtt_sample(now, rtt, rtt / 2.0);
                cwnd = cwnd.clamp(1.0, MAX_CWND);
            }
            CcOp::RecoveryExit if in_recovery => {
                let mut ctx = CcContext {
                    now,
                    rtt: 0.05,
                    owd: 0.025,
                    newly_acked: 1,
                    in_flight,
                    cwnd: &mut cwnd,
                    ssthresh: &mut ssthresh,
                };
                cc.on_recovery_exit(&mut ctx);
                in_recovery = false;
                cwnd = cwnd.clamp(1.0, MAX_CWND);
            }
            // Loss/ECN during recovery and exits outside it are gated
            // off by the sender; skip them here too.
            CcOp::Loss | CcOp::Ecn | CcOp::RecoveryExit => {}
        }
        prop_assert!(
            cwnd.is_finite() && ssthresh.is_finite(),
            "{name}: non-finite window state cwnd={cwnd} ssthresh={ssthresh}"
        );
        prop_assert!(
            (1.0..=MAX_CWND).contains(&cwnd),
            "{name}: cwnd {cwnd} escaped [1, {MAX_CWND}]"
        );
        prop_assert!(ssthresh >= 2.0, "{name}: ssthresh {ssthresh} below 2");
        if let Some(rate) = cc.pacing_rate() {
            prop_assert!(
                rate.is_finite() && rate > 0.0,
                "{name}: pacing rate {rate} not a positive finite value"
            );
        }
    }
}

proptest! {
    /// Under any protocol-valid interleaving of ACKs, losses, ECN marks,
    /// timeouts, and recovery episodes, every algorithm in the zoo keeps
    /// `cwnd` within `[1, max_cwnd]`, `ssthresh >= 2`, and never emits a
    /// non-finite window or pacing rate.
    #[test]
    fn cc_zoo_window_invariants(
        seed in 0u64..1_000,
        ops in proptest::collection::vec(cc_op_strategy(), 1..200),
    ) {
        for (name, mut cc) in cc_zoo(seed) {
            drive_cc(name, cc.as_mut(), &ops);
        }
    }
}
