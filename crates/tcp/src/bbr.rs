//! A BBRv1-style model-based sender (Cardwell et al., ACM Queue 2016):
//! instead of a loss-driven AIMD window, the flow continuously estimates
//! the path's bottleneck bandwidth (windowed-max of per-round delivery
//! rates) and propagation delay (min RTT with periodic re-probing), and
//! operates at their product.
//!
//! * **Startup** — gain 2/ln 2 doubles the delivery rate each round until
//!   the bandwidth filter stops growing (+25% for three rounds).
//! * **Drain** — inverse gain empties the queue Startup built, until the
//!   pipe is down to one BDP.
//! * **ProbeBW** — the steady state: an eight-phase gain cycle
//!   `[1.25, 0.75, 1, 1, 1, 1, 1, 1]` alternately probes for more
//!   bandwidth and drains the probe, one phase per min-RTT.
//! * **ProbeRTT** — when the min-RTT sample ages out (10 s), the window
//!   drops to 4 segments for max(200 ms, one RTT) to re-measure the
//!   floor.
//!
//! Pacing is expressed as send-quantum scheduling on the integer-time
//! calendar (see `sender.rs` `send_paced`), so paced schedules stay
//! byte-identical across hostings and shard counts. The windowed-max
//! bandwidth filter (monotonic deque) is cross-checked each round against
//! the straight-line rescan in [`BbrReference`] under `--audit`.

use std::collections::VecDeque;

use pert_core::audit;
use pert_core::reference::BbrReference;
#[cfg(feature = "telemetry")]
use pert_core::telemetry;

use crate::cc::{CcAction, CcAlgorithm, CcContext};

/// Bandwidth filter window, packet-timed rounds.
const BW_WINDOW_ROUNDS: u64 = 10;
/// Min-RTT filter window, seconds.
const MIN_RTT_WINDOW: f64 = 10.0;
/// ProbeRTT dwell floor, seconds.
const PROBE_RTT_DURATION: f64 = 0.2;
/// ProbeRTT window cap, segments.
const PROBE_RTT_CWND: f64 = 4.0;
/// Startup/Drain gains: 2/ln 2 doubles the sending rate per round.
const STARTUP_GAIN: f64 = 2.885_390_081_777_926_8;
/// Full-pipe test: bandwidth must grow ≥25%/round to keep Startup alive.
const FULL_BW_GROWTH: f64 = 1.25;
const FULL_BW_ROUNDS: u32 = 3;
/// ProbeBW's eight-phase pacing-gain cycle.
const PROBE_BW_GAINS: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// Steady-state window gain (2×BDP absorbs delayed/aggregated ACKs).
const CWND_GAIN: f64 = 2.0;

/// Exact sliding-window maximum over rounds: a monotonic deque (back is
/// popped while dominated, front while expired). O(1) amortized; the
/// audit oracle recomputes the same max by rescanning every in-window
/// sample.
#[derive(Clone, Debug, Default)]
struct WindowedMax {
    window: u64,
    deque: VecDeque<(u64, f64)>,
}

impl WindowedMax {
    fn new(window: u64) -> Self {
        WindowedMax {
            window,
            deque: VecDeque::new(),
        }
    }

    fn push(&mut self, round: u64, value: f64) {
        while self.deque.back().is_some_and(|&(_, v)| v <= value) {
            self.deque.pop_back();
        }
        self.deque.push_back((round, value));
        while self
            .deque
            .front()
            .is_some_and(|&(r, _)| r + self.window <= round)
        {
            self.deque.pop_front();
        }
    }

    fn max(&self) -> f64 {
        self.deque.front().map_or(0.0, |&(_, v)| v)
    }
}

/// The BBR state machine's current mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    Startup,
    Drain,
    ProbeBw,
    ProbeRtt,
}

impl State {
    /// Stable index for the `bbr/state` telemetry series.
    fn index(self) -> f64 {
        match self {
            State::Startup => 0.0,
            State::Drain => 1.0,
            State::ProbeBw => 2.0,
            State::ProbeRtt => 3.0,
        }
    }
}

/// BBRv1-style congestion control.
pub struct Bbr {
    state: State,
    // --- bandwidth model ------------------------------------------------
    /// Cumulative segments delivered (sum of `newly_acked`).
    delivered: u64,
    round: u64,
    round_start_time: f64,
    round_start_delivered: u64,
    /// End of the current packet-timed round (approximated on the ACK
    /// clock: one round per RTT of wall time).
    round_end: f64,
    btlbw: WindowedMax,
    // --- propagation model ----------------------------------------------
    min_rtt: f64,
    min_rtt_stamp: f64,
    // --- state-machine bookkeeping ---------------------------------------
    filled_pipe: bool,
    full_bw: f64,
    full_bw_rounds: u32,
    pacing_gain: f64,
    cwnd_gain: f64,
    /// ProbeBW phase index and entry time.
    phase: usize,
    phase_start: f64,
    /// ProbeRTT dwell deadline once the pipe has drained to the cap.
    probe_rtt_done: Option<f64>,
    /// Window at the last congestion event, restored on recovery exit.
    prior_cwnd: f64,
    in_recovery: bool,
    /// Straight-line filter oracle, attached when auditing.
    shadow: Option<BbrReference>,
    #[cfg(feature = "telemetry")]
    tap_btlbw: Option<telemetry::Tap>,
    #[cfg(feature = "telemetry")]
    tap_min_rtt: Option<telemetry::Tap>,
    #[cfg(feature = "telemetry")]
    tap_state: Option<telemetry::Tap>,
}

impl Bbr {
    /// A fresh BBR flow. `seed` keys this flow's telemetry series and
    /// staggers the initial ProbeBW phase so a fleet of flows does not
    /// probe in lockstep (BBR's randomized cycle start, made
    /// deterministic per flow).
    pub fn new(seed: u64) -> Self {
        // Any phase but the draining one (index 1), as BBR specifies.
        let mut phase = (seed % 7) as usize;
        if phase >= 1 {
            phase += 1;
        }
        Bbr {
            state: State::Startup,
            delivered: 0,
            round: 0,
            round_start_time: 0.0,
            round_start_delivered: 0,
            round_end: 0.0,
            btlbw: WindowedMax::new(BW_WINDOW_ROUNDS),
            min_rtt: f64::INFINITY,
            min_rtt_stamp: 0.0,
            filled_pipe: false,
            full_bw: 0.0,
            full_bw_rounds: 0,
            pacing_gain: STARTUP_GAIN,
            cwnd_gain: STARTUP_GAIN,
            phase,
            phase_start: 0.0,
            probe_rtt_done: None,
            prior_cwnd: 0.0,
            in_recovery: false,
            shadow: audit::enabled().then(|| BbrReference::new(BW_WINDOW_ROUNDS)),
            #[cfg(feature = "telemetry")]
            tap_btlbw: telemetry::Tap::attach("bbr/btlbw", seed),
            #[cfg(feature = "telemetry")]
            tap_min_rtt: telemetry::Tap::attach("bbr/min_rtt", seed),
            #[cfg(feature = "telemetry")]
            tap_state: telemetry::Tap::attach("bbr/state", seed),
        }
    }

    /// Current bottleneck-bandwidth estimate, segments/second.
    pub fn btlbw(&self) -> f64 {
        self.btlbw.max()
    }

    /// Current min-RTT estimate, seconds (infinite before any sample).
    pub fn min_rtt(&self) -> f64 {
        self.min_rtt
    }

    /// True once Startup declared the pipe full.
    pub fn filled_pipe(&self) -> bool {
        self.filled_pipe
    }

    fn set_state(&mut self, state: State, now: f64) {
        if self.state != state {
            self.state = state;
            #[cfg(feature = "telemetry")]
            if let Some(tap) = &self.tap_state {
                tap.record(now, state.index());
            }
            #[cfg(not(feature = "telemetry"))]
            let _ = now;
        }
    }

    /// The model window `gain · BtlBw · RTprop`, floored at 4 segments;
    /// infinite until both filters have a sample (window-driven startup).
    fn target_cwnd(&self, gain: f64) -> f64 {
        let btlbw = self.btlbw.max();
        if btlbw <= 0.0 || !self.min_rtt.is_finite() {
            return f64::MAX;
        }
        let target = (gain * btlbw * self.min_rtt).max(PROBE_RTT_CWND);
        if self.shadow.is_some() {
            audit::count_oracle_checks(1);
            let t_ref = BbrReference::cwnd_for(gain, btlbw, self.min_rtt);
            if !audit::close(target, t_ref) {
                audit::violation(
                    "bbr",
                    format_args!("target cwnd {target} != reference {t_ref}"),
                );
            }
        }
        target
    }

    /// Shared per-ACK model update: delivery accounting, round turnover,
    /// bandwidth/min-RTT filters, and the state machine.
    fn update_model(&mut self, now: f64, rtt: f64, newly_acked: u64, in_flight: u64) {
        self.delivered += newly_acked;

        // Round turnover on the ACK clock.
        if now >= self.round_end {
            let dt = now - self.round_start_time;
            let dd = self.delivered - self.round_start_delivered;
            if dt > 0.0 && dd > 0 {
                let rate = dd as f64 / dt;
                self.round += 1;
                self.btlbw.push(self.round, rate);
                if let Some(shadow) = &mut self.shadow {
                    audit::count_oracle_checks(1);
                    let max_ref = shadow.on_rate_sample(self.round, rate);
                    if !audit::close(self.btlbw.max(), max_ref) {
                        audit::violation(
                            "bbr",
                            format_args!(
                                "deque max {} != rescan max {max_ref} at round {}",
                                self.btlbw.max(),
                                self.round
                            ),
                        );
                    }
                }
                #[cfg(feature = "telemetry")]
                if let Some(tap) = &self.tap_btlbw {
                    tap.record(now, self.btlbw.max());
                }
                self.on_round_advance(now);
            }
            self.round_start_time = now;
            self.round_start_delivered = self.delivered;
            self.round_end = now + rtt;
        }

        // Min-RTT filter: the expiry test precedes the update so an aged
        // filter accepts the current sample even if it is larger.
        let expired = now > self.min_rtt_stamp + MIN_RTT_WINDOW;
        if rtt < self.min_rtt || expired {
            self.min_rtt = rtt;
            self.min_rtt_stamp = now;
            #[cfg(feature = "telemetry")]
            if let Some(tap) = &self.tap_min_rtt {
                tap.record(now, self.min_rtt);
            }
        }
        if expired && self.state != State::ProbeRtt && self.filled_pipe {
            self.probe_rtt_done = None;
            self.pacing_gain = 1.0;
            self.cwnd_gain = 1.0;
            self.set_state(State::ProbeRtt, now);
        }

        self.advance_state(now, in_flight);
    }

    /// Per-round Startup full-pipe test (BBR: bandwidth must keep growing
    /// 25%/round, else three flat rounds mean the pipe is full).
    fn on_round_advance(&mut self, _now: f64) {
        if self.filled_pipe || self.state != State::Startup {
            return;
        }
        let bw = self.btlbw.max();
        if bw >= self.full_bw * FULL_BW_GROWTH {
            self.full_bw = bw;
            self.full_bw_rounds = 0;
        } else {
            self.full_bw_rounds += 1;
            if self.full_bw_rounds >= FULL_BW_ROUNDS {
                self.filled_pipe = true;
            }
        }
    }

    fn advance_state(&mut self, now: f64, in_flight: u64) {
        match self.state {
            State::Startup => {
                if self.filled_pipe {
                    self.pacing_gain = 1.0 / STARTUP_GAIN;
                    self.cwnd_gain = STARTUP_GAIN;
                    self.set_state(State::Drain, now);
                }
            }
            State::Drain => {
                // Drain until the pipe holds one BDP, then cruise.
                if (in_flight as f64) <= self.target_cwnd(1.0) {
                    self.enter_probe_bw(now);
                }
            }
            State::ProbeBw => {
                if self.min_rtt.is_finite() && now - self.phase_start > self.min_rtt {
                    self.phase = (self.phase + 1) % PROBE_BW_GAINS.len();
                    self.phase_start = now;
                    self.pacing_gain = PROBE_BW_GAINS[self.phase];
                }
            }
            State::ProbeRtt => {
                match self.probe_rtt_done {
                    None => {
                        // Wait for the pipe to drain to the cap, then dwell.
                        if (in_flight as f64) <= PROBE_RTT_CWND {
                            let dwell = PROBE_RTT_DURATION.max(self.min_rtt);
                            self.probe_rtt_done = Some(now + dwell);
                        }
                    }
                    Some(done) => {
                        if now >= done {
                            self.min_rtt_stamp = now;
                            self.probe_rtt_done = None;
                            if self.filled_pipe {
                                self.enter_probe_bw(now);
                            } else {
                                self.pacing_gain = STARTUP_GAIN;
                                self.cwnd_gain = STARTUP_GAIN;
                                self.set_state(State::Startup, now);
                            }
                        }
                    }
                }
            }
        }
    }

    fn enter_probe_bw(&mut self, now: f64) {
        self.pacing_gain = PROBE_BW_GAINS[self.phase];
        self.cwnd_gain = CWND_GAIN;
        self.phase_start = now;
        self.set_state(State::ProbeBw, now);
    }

    /// Move the window toward the model target: fill gradually (ACK
    /// clocked) while below, snap down when above, and honor the ProbeRTT
    /// cap.
    fn apply_cwnd(&self, ctx: &mut CcContext<'_>) {
        let target = self.target_cwnd(self.cwnd_gain);
        if target == f64::MAX {
            // No model yet: grow like slow start until the filters fill.
            *ctx.cwnd += ctx.newly_acked as f64;
        } else if *ctx.cwnd < target {
            *ctx.cwnd = (*ctx.cwnd + ctx.newly_acked as f64).min(target);
        } else {
            *ctx.cwnd = target;
        }
        if self.state == State::ProbeRtt {
            *ctx.cwnd = (*ctx.cwnd).min(PROBE_RTT_CWND);
        }
        *ctx.cwnd = (*ctx.cwnd).max(1.0);
    }
}

impl CcAlgorithm for Bbr {
    fn name(&self) -> &'static str {
        "bbr"
    }

    fn on_ack(&mut self, ctx: &mut CcContext<'_>) -> CcAction {
        self.update_model(ctx.now, ctx.rtt, ctx.newly_acked, ctx.in_flight);
        self.apply_cwnd(ctx);
        CcAction::None
    }

    fn on_congestion_event(&mut self, _now: f64, cwnd_at_event: f64, _in_flight: u64) {
        // BBR does not reduce on loss; remember the window so recovery
        // exit can restore it after the conservative in-recovery cap.
        self.prior_cwnd = cwnd_at_event;
    }

    fn governs_recovery(&self) -> bool {
        true
    }

    fn on_recovery_start(&mut self, _now: f64, _in_flight: u64) {
        self.in_recovery = true;
    }

    fn on_recovery_ack(&mut self, ctx: &mut CcContext<'_>) {
        // Keep the model fresh through recovery, but hold the window at
        // packet conservation (one new segment per delivered segment).
        self.update_model(ctx.now, ctx.rtt, ctx.newly_acked, ctx.in_flight);
        if self.in_recovery {
            *ctx.cwnd = (ctx.in_flight as f64 + ctx.newly_acked as f64).max(PROBE_RTT_CWND);
        } else {
            // Post-RTO: rebuild toward the model window.
            self.apply_cwnd(ctx);
        }
    }

    fn on_recovery_exit(&mut self, ctx: &mut CcContext<'_>) {
        if self.in_recovery {
            self.in_recovery = false;
            *ctx.cwnd = (*ctx.cwnd).max(self.prior_cwnd);
        }
    }

    /// Loss is not a model signal: ssthresh keeps the pre-event window.
    fn loss_reduction(&self) -> f64 {
        0.0
    }

    fn pacing_rate(&self) -> Option<f64> {
        let btlbw = self.btlbw.max();
        if btlbw > 0.0 {
            Some(self.pacing_gain * btlbw)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(
        cc: &mut Bbr,
        now: f64,
        rtt: f64,
        newly: u64,
        in_flight: u64,
        cwnd: &mut f64,
        ssthresh: &mut f64,
    ) {
        let mut ctx = CcContext {
            now,
            rtt,
            owd: rtt / 2.0,
            newly_acked: newly,
            in_flight,
            cwnd,
            ssthresh,
        };
        cc.on_ack(&mut ctx);
    }

    #[test]
    fn windowed_max_matches_naive_rescan() {
        let mut fast = WindowedMax::new(5);
        let mut naive = BbrReference::new(5);
        let values = [
            3.0, 9.0, 2.0, 7.0, 7.5, 1.0, 0.5, 12.0, 4.0, 3.0, 2.0, 1.0, 0.9, 0.8, 6.0,
        ];
        for (i, &v) in values.iter().enumerate() {
            fast.push(i as u64, v);
            let want = naive.on_rate_sample(i as u64, v);
            assert_eq!(fast.max(), want, "diverged at sample {i}");
        }
    }

    #[test]
    fn startup_fills_then_drains_then_cruises() {
        let mut cc = Bbr::new(7);
        let mut cwnd = 4.0;
        let mut ssthresh = f64::MAX;
        let rtt = 0.05;
        let mut now = 0.0;
        // Bottleneck of 1000 seg/s: delivery per round plateaus at 50
        // segments/RTT no matter how the window grows.
        for _ in 0..400 {
            now += rtt;
            let in_flight = (cwnd as u64).min(45);
            ack(&mut cc, now, rtt, 50, in_flight, &mut cwnd, &mut ssthresh);
        }
        assert!(cc.filled_pipe(), "flat delivery must end Startup");
        assert_eq!(cc.state, State::ProbeBw);
        // The model bandwidth is the plateau rate.
        assert!(
            (cc.btlbw() - 1000.0).abs() / 1000.0 < 0.05,
            "btlbw = {}",
            cc.btlbw()
        );
        // And the window sits near cwnd_gain·BDP = 2·50 = 100.
        assert!(cwnd <= 110.0, "cwnd = {cwnd}");
        assert!(cc.pacing_rate().is_some());
    }

    #[test]
    fn min_rtt_expiry_triggers_probe_rtt_and_recovers() {
        let mut cc = Bbr::new(8);
        let mut cwnd = 4.0;
        let mut ssthresh = f64::MAX;
        let rtt = 0.05;
        let mut now = 0.0;
        for _ in 0..400 {
            now += rtt;
            let in_flight = (cwnd as u64).min(45);
            ack(&mut cc, now, rtt, 50, in_flight, &mut cwnd, &mut ssthresh);
        }
        assert!(cc.filled_pipe());
        // Age the min-RTT filter past its window without lower samples.
        let mut saw_probe_rtt = false;
        for _ in 0..400 {
            now += rtt;
            let in_flight = (cwnd as u64).clamp(1, 45);
            ack(&mut cc, now, rtt, 50, in_flight, &mut cwnd, &mut ssthresh);
            if cc.state == State::ProbeRtt {
                saw_probe_rtt = true;
                assert!(cwnd <= PROBE_RTT_CWND);
                // Pipe drained to the cap: dwell then return to cruising.
                for _ in 0..20 {
                    now += rtt;
                    ack(&mut cc, now, rtt, 4, 4, &mut cwnd, &mut ssthresh);
                }
                break;
            }
        }
        assert!(saw_probe_rtt, "min-RTT expiry must enter ProbeRTT");
        assert_eq!(cc.state, State::ProbeBw);
        assert!(cwnd > PROBE_RTT_CWND);
    }

    #[test]
    fn recovery_holds_conservation_then_restores() {
        let mut cc = Bbr::new(9);
        let mut cwnd = 80.0;
        let mut ssthresh = 80.0;
        cc.on_congestion_event(1.0, 80.0, 60);
        cc.on_recovery_start(1.0, 60);
        let mut ctx = CcContext {
            now: 1.01,
            rtt: 0.05,
            owd: 0.025,
            newly_acked: 2,
            in_flight: 58,
            cwnd: &mut cwnd,
            ssthresh: &mut ssthresh,
        };
        cc.on_recovery_ack(&mut ctx);
        assert_eq!(cwnd, 60.0); // in_flight + newly
        let mut ctx = CcContext {
            now: 1.1,
            rtt: 0.05,
            owd: 0.025,
            newly_acked: 1,
            in_flight: 59,
            cwnd: &mut cwnd,
            ssthresh: &mut ssthresh,
        };
        cc.on_recovery_exit(&mut ctx);
        assert_eq!(cwnd, 80.0); // prior window restored
    }
}
