//! # pert-tcp — TCP endpoints for the `netsim` simulator
//!
//! A SACK-capable TCP sender/sink pair with pluggable congestion control,
//! covering every transport the PERT paper evaluates:
//!
//! | paper scheme     | construction                                     |
//! |------------------|--------------------------------------------------|
//! | SACK (DropTail or RED-ECN routers) | [`cc::Reno`] (+ `ecn: true`)   |
//! | TCP Vegas        | [`cc::Vegas`]                                    |
//! | PERT             | [`cc::PertCc`] (gentle-RED emulation, §3)        |
//! | PERT/PI          | [`cc::PertPiCc`] (PI emulation, §6)              |
//!
//! The sender implements slow start, congestion avoidance, FACK-style loss
//! detection over a SACK scoreboard, fast retransmit/recovery, RTO with
//! exponential backoff, ECN, and per-ACK RTT sampling via exact packet
//! timestamps. See [`TcpSender`] and [`TcpSink`].
//!
//! Use [`connect`] to wire a sender/sink pair into a simulator:
//!
//! ```
//! use netsim::prelude::*;
//! use pert_tcp::{connect, ConnectionSpec, START_TOKEN};
//!
//! let mut sim = Simulator::new(7);
//! let (a, b) = (sim.add_node(), sim.add_node());
//! sim.add_duplex_link(a, b, 10_000_000, SimDuration::from_millis(10), |_| {
//!     Box::new(DropTail::new(50))
//! });
//! sim.compute_routes();
//! let conn = connect(&mut sim, ConnectionSpec::pert(FlowId(0), a, b, 1));
//! sim.schedule_agent_timer(SimTime::ZERO, conn.sender, START_TOKEN);
//! sim.run_until(SimTime::from_secs_f64(5.0));
//! let sender: &pert_tcp::TcpSender = sim.agent(conn.sender);
//! assert!(sender.stats.acked_segments > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cc;
pub mod intervals;
pub mod scoreboard;
pub mod sender;
pub mod sink;
pub mod source;

pub use cc::{
    CcAction, CcAlgorithm, CcContext, DelaySignal, PertCc, PertPiCc, PertRemCc, Reno, Vegas,
};
pub use intervals::IntervalSet;
pub use scoreboard::{Scoreboard, SegState};
pub use sender::{SenderStats, TcpConfig, TcpSender, START_TOKEN, STOP_TOKEN};
pub use sink::{SinkStats, TcpSink};
pub use source::{Finite, FnSource, Greedy, Source, Transfer};

use netsim::{AgentId, FlowId, NodeId, Simulator};
use pert_core::pert::PertParams;
use pert_core::pi::PertPiParams;
use pert_core::rem::PertRemParams;

/// Which congestion control a connection uses.
#[derive(Clone, Debug)]
pub enum CcKind {
    /// Loss-based SACK (the paper's standard-TCP baseline).
    Sack,
    /// TCP Vegas.
    Vegas,
    /// PERT with the given parameters.
    Pert(PertParams),
    /// PERT driven by forward one-way delay (§7 variant).
    PertOwd(PertParams),
    /// PERT/PI with the given parameters.
    PertPi(PertPiParams),
    /// PERT/REM with the given parameters (§8 generalization).
    PertRem(PertRemParams),
}

impl CcKind {
    fn build(&self, seed: u64) -> Box<dyn CcAlgorithm> {
        match self {
            CcKind::Sack => Box::new(Reno::new()),
            CcKind::Vegas => Box::new(Vegas::new()),
            CcKind::Pert(p) => Box::new(PertCc::with_params(*p, seed)),
            CcKind::PertOwd(p) => {
                Box::new(PertCc::with_signal(*p, cc::DelaySignal::OneWayDelay, seed))
            }
            CcKind::PertPi(p) => Box::new(PertPiCc::new(*p, seed)),
            CcKind::PertRem(p) => Box::new(PertRemCc::new(*p, seed)),
        }
    }

    /// Short scheme name.
    pub fn name(&self) -> &'static str {
        match self {
            CcKind::Sack => "sack",
            CcKind::Vegas => "vegas",
            CcKind::Pert(_) => "pert",
            CcKind::PertOwd(_) => "pert-owd",
            CcKind::PertPi(_) => "pert-pi",
            CcKind::PertRem(_) => "pert-rem",
        }
    }
}

/// Everything needed to create one connection.
#[derive(Clone, Debug)]
pub struct ConnectionSpec {
    /// Flow id (unique per connection).
    pub flow: FlowId,
    /// Sender-side node.
    pub src: NodeId,
    /// Sink-side node.
    pub dst: NodeId,
    /// Congestion control.
    pub cc: CcKind,
    /// ECN-capable transport (pair with RED/PI-ECN routers).
    pub ecn: bool,
    /// Seed for all per-connection randomness.
    pub seed: u64,
    /// Record per-ACK samples on the sender.
    pub record_samples: bool,
    /// Delayed-ACK timeout for the sink (`None` = per-packet ACKs, the
    /// paper's assumption).
    pub delack: Option<netsim::SimDuration>,
    /// Segment size in bytes.
    pub seg_size: u32,
}

impl ConnectionSpec {
    /// A SACK connection (ECN off — DropTail baseline).
    pub fn sack(flow: FlowId, src: NodeId, dst: NodeId, seed: u64) -> Self {
        Self::new(flow, src, dst, CcKind::Sack, seed)
    }

    /// A SACK connection with ECN (RED-ECN baseline).
    pub fn sack_ecn(flow: FlowId, src: NodeId, dst: NodeId, seed: u64) -> Self {
        let mut s = Self::new(flow, src, dst, CcKind::Sack, seed);
        s.ecn = true;
        s
    }

    /// A Vegas connection.
    pub fn vegas(flow: FlowId, src: NodeId, dst: NodeId, seed: u64) -> Self {
        Self::new(flow, src, dst, CcKind::Vegas, seed)
    }

    /// A PERT connection with the paper's default parameters.
    pub fn pert(flow: FlowId, src: NodeId, dst: NodeId, seed: u64) -> Self {
        Self::new(flow, src, dst, CcKind::Pert(PertParams::default()), seed)
    }

    /// A PERT/PI connection.
    pub fn pert_pi(flow: FlowId, src: NodeId, dst: NodeId, p: PertPiParams, seed: u64) -> Self {
        Self::new(flow, src, dst, CcKind::PertPi(p), seed)
    }

    /// Generic constructor.
    pub fn new(flow: FlowId, src: NodeId, dst: NodeId, cc: CcKind, seed: u64) -> Self {
        ConnectionSpec {
            flow,
            src,
            dst,
            cc,
            ecn: false,
            seed,
            record_samples: false,
            delack: None,
            seg_size: 1000,
        }
    }

    /// Builder-style: record per-ACK samples.
    pub fn with_samples(mut self) -> Self {
        self.record_samples = true;
        self
    }
}

/// Handle to an installed connection.
#[derive(Clone, Copy, Debug)]
pub struct Connection {
    /// The flow id.
    pub flow: FlowId,
    /// Sender agent (a [`TcpSender`]).
    pub sender: AgentId,
    /// Sink agent (a [`TcpSink`]).
    pub sink: AgentId,
}

/// Install a sender/sink pair for `spec`, using `source` as the
/// application (defaults to [`Greedy`] via [`connect`]).
pub fn connect_with_source(
    sim: &mut Simulator,
    spec: ConnectionSpec,
    source: Box<dyn Source>,
) -> Connection {
    let sender_id = sim.alloc_agent();
    let sink_id = sim.alloc_agent();

    let mut cfg = TcpConfig::new(spec.flow, spec.dst, sink_id);
    cfg.ecn = spec.ecn;
    cfg.seed = spec.seed;
    cfg.record_samples = spec.record_samples;
    cfg.seg_size = spec.seg_size;
    let cc = spec.cc.build(spec.seed);
    let sender = TcpSender::new(cfg, cc, source);
    sim.install_agent(sender_id, spec.src, Box::new(sender));

    let mut sink = TcpSink::new(spec.flow, spec.src, sender_id, 40);
    if let Some(timeout) = spec.delack {
        sink = sink.with_delayed_acks(timeout);
    }
    sim.install_agent(sink_id, spec.dst, Box::new(sink));

    Connection {
        flow: spec.flow,
        sender: sender_id,
        sink: sink_id,
    }
}

/// Install a greedy (long-lived FTP) connection for `spec`.
pub fn connect(sim: &mut Simulator, spec: ConnectionSpec) -> Connection {
    connect_with_source(sim, spec, Box::new(Greedy))
}
