//! # pert-tcp — TCP endpoints for the `netsim` simulator
//!
//! A SACK-capable TCP sender/sink pair with pluggable congestion control,
//! covering every transport the PERT paper evaluates:
//!
//! | paper scheme     | construction                                     |
//! |------------------|--------------------------------------------------|
//! | SACK (DropTail or RED-ECN routers) | [`cc::Reno`] (+ `ecn: true`)   |
//! | TCP Vegas        | [`cc::Vegas`]                                    |
//! | PERT             | [`cc::PertCc`] (gentle-RED emulation, §3)        |
//! | PERT/PI          | [`cc::PertPiCc`] (PI emulation, §6)              |
//!
//! The sender implements slow start, congestion avoidance, FACK-style loss
//! detection over a SACK scoreboard, fast retransmit/recovery, RTO with
//! exponential backoff, ECN, and per-ACK RTT sampling via exact packet
//! timestamps. See [`TcpSender`] and [`TcpSink`].
//!
//! Use [`connect`] to wire a sender/sink pair into a simulator. By
//! default every sender of a simulation is hosted by one shared
//! struct-of-arrays [`FlowSlab`] agent (see [`set_legacy_agents`] for the
//! per-flow-agent escape hatch); read per-flow results back through the
//! `sender_*` accessors, which work in both modes:
//!
//! ```
//! use netsim::prelude::*;
//! use pert_tcp::{connect, ConnectionSpec};
//!
//! let mut sim = Simulator::new(7);
//! let (a, b) = (sim.add_node(), sim.add_node());
//! sim.add_duplex_link(a, b, 10_000_000, SimDuration::from_millis(10), |_| {
//!     Box::new(DropTail::new(50))
//! });
//! sim.compute_routes();
//! let conn = connect(&mut sim, ConnectionSpec::pert(FlowId(0), a, b, 1));
//! sim.schedule_agent_timer(SimTime::ZERO, conn.sender, conn.start_token);
//! sim.run_until(SimTime::from_secs_f64(5.0));
//! assert!(pert_tcp::sender_stats(&sim, &conn).acked_segments > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bbr;
pub mod cc;
pub mod cubic;
pub mod intervals;
pub mod scoreboard;
pub mod sender;
pub mod sink;
pub mod slab;
pub mod source;

pub use bbr::Bbr;
pub use cc::{
    CcAction, CcAlgorithm, CcContext, DelaySignal, PertCc, PertPiCc, PertRemCc, Reno, Vegas,
};
pub use cubic::Cubic;
pub use intervals::IntervalSet;
pub use scoreboard::{Scoreboard, SegState};
pub use sender::{SenderStats, TcpConfig, TcpSender, START_TOKEN, STOP_TOKEN};
pub use sink::{SinkStats, TcpSink};
pub use slab::FlowSlab;
pub use source::{Finite, FnSource, Greedy, Source, Transfer};

use std::sync::atomic::{AtomicBool, Ordering};

use netsim::{AgentId, FlowId, NodeId, Simulator, TimerToken};
use pert_core::pert::PertParams;
use pert_core::pi::PertPiParams;
use pert_core::predictors::AckSample;
use pert_core::rem::PertRemParams;

/// Which congestion control a connection uses.
#[derive(Clone, Debug)]
pub enum CcKind {
    /// Loss-based SACK (the paper's standard-TCP baseline).
    Sack,
    /// TCP Vegas.
    Vegas,
    /// PERT with the given parameters.
    Pert(PertParams),
    /// PERT driven by forward one-way delay (§7 variant).
    PertOwd(PertParams),
    /// PERT/PI with the given parameters.
    PertPi(PertPiParams),
    /// PERT/REM with the given parameters (§8 generalization).
    PertRem(PertRemParams),
    /// CUBIC (RFC 9438) with hybrid slow start and PRR — the modern
    /// loss-based competitor.
    Cubic,
    /// BBRv1-style model-based sender (delivery-rate + min-RTT filters,
    /// gain cycling, paced sending).
    Bbr,
}

impl CcKind {
    fn build(&self, seed: u64) -> Box<dyn CcAlgorithm> {
        match self {
            CcKind::Sack => Box::new(Reno::new()),
            CcKind::Vegas => Box::new(Vegas::new()),
            CcKind::Pert(p) => Box::new(PertCc::with_params(*p, seed)),
            CcKind::PertOwd(p) => {
                Box::new(PertCc::with_signal(*p, cc::DelaySignal::OneWayDelay, seed))
            }
            CcKind::PertPi(p) => Box::new(PertPiCc::new(*p, seed)),
            CcKind::PertRem(p) => Box::new(PertRemCc::new(*p, seed)),
            CcKind::Cubic => Box::new(Cubic::new(seed)),
            CcKind::Bbr => Box::new(Bbr::new(seed)),
        }
    }

    /// Short scheme name.
    pub fn name(&self) -> &'static str {
        match self {
            CcKind::Sack => "sack",
            CcKind::Vegas => "vegas",
            CcKind::Pert(_) => "pert",
            CcKind::PertOwd(_) => "pert-owd",
            CcKind::PertPi(_) => "pert-pi",
            CcKind::PertRem(_) => "pert-rem",
            CcKind::Cubic => "cubic",
            CcKind::Bbr => "bbr",
        }
    }
}

/// Everything needed to create one connection.
#[derive(Clone, Debug)]
pub struct ConnectionSpec {
    /// Flow id (unique per connection).
    pub flow: FlowId,
    /// Sender-side node.
    pub src: NodeId,
    /// Sink-side node.
    pub dst: NodeId,
    /// Congestion control.
    pub cc: CcKind,
    /// ECN-capable transport (pair with RED/PI-ECN routers).
    pub ecn: bool,
    /// Seed for all per-connection randomness.
    pub seed: u64,
    /// Record per-ACK samples on the sender.
    pub record_samples: bool,
    /// Delayed-ACK timeout for the sink (`None` = per-packet ACKs, the
    /// paper's assumption).
    pub delack: Option<netsim::SimDuration>,
    /// Segment size in bytes.
    pub seg_size: u32,
}

impl ConnectionSpec {
    /// A SACK connection (ECN off — DropTail baseline).
    pub fn sack(flow: FlowId, src: NodeId, dst: NodeId, seed: u64) -> Self {
        Self::new(flow, src, dst, CcKind::Sack, seed)
    }

    /// A SACK connection with ECN (RED-ECN baseline).
    pub fn sack_ecn(flow: FlowId, src: NodeId, dst: NodeId, seed: u64) -> Self {
        let mut s = Self::new(flow, src, dst, CcKind::Sack, seed);
        s.ecn = true;
        s
    }

    /// A Vegas connection.
    pub fn vegas(flow: FlowId, src: NodeId, dst: NodeId, seed: u64) -> Self {
        Self::new(flow, src, dst, CcKind::Vegas, seed)
    }

    /// A PERT connection with the paper's default parameters.
    pub fn pert(flow: FlowId, src: NodeId, dst: NodeId, seed: u64) -> Self {
        Self::new(flow, src, dst, CcKind::Pert(PertParams::default()), seed)
    }

    /// A PERT/PI connection.
    pub fn pert_pi(flow: FlowId, src: NodeId, dst: NodeId, p: PertPiParams, seed: u64) -> Self {
        Self::new(flow, src, dst, CcKind::PertPi(p), seed)
    }

    /// A CUBIC connection.
    pub fn cubic(flow: FlowId, src: NodeId, dst: NodeId, seed: u64) -> Self {
        Self::new(flow, src, dst, CcKind::Cubic, seed)
    }

    /// A BBR connection.
    pub fn bbr(flow: FlowId, src: NodeId, dst: NodeId, seed: u64) -> Self {
        Self::new(flow, src, dst, CcKind::Bbr, seed)
    }

    /// Generic constructor.
    pub fn new(flow: FlowId, src: NodeId, dst: NodeId, cc: CcKind, seed: u64) -> Self {
        ConnectionSpec {
            flow,
            src,
            dst,
            cc,
            ecn: false,
            seed,
            record_samples: false,
            delack: None,
            seg_size: 1000,
        }
    }

    /// Builder-style: record per-ACK samples.
    pub fn with_samples(mut self) -> Self {
        self.record_samples = true;
        self
    }
}

/// Handle to an installed connection.
#[derive(Clone, Copy, Debug)]
pub struct Connection {
    /// The flow id.
    pub flow: FlowId,
    /// Sender agent: the shared [`FlowSlab`] (default) or a per-flow
    /// [`TcpSender`] (legacy mode). Use with the timer tokens below and
    /// the `sender_*` accessors; do not downcast directly.
    pub sender: AgentId,
    /// Sink agent (a [`TcpSink`]).
    pub sink: AgentId,
    /// Token that starts this flow (schedule on `sender` with
    /// [`netsim::Simulator::schedule_agent_timer`]).
    pub start_token: TimerToken,
    /// Token that stops this flow.
    pub stop_token: TimerToken,
}

/// When set, [`connect_with_source`] installs one [`TcpSender`] agent per
/// flow instead of hosting flows in the shared [`FlowSlab`]. Process-wide;
/// set before building any simulator (both modes produce byte-identical
/// schedules, so this is an equivalence-checking and debugging aid).
static LEGACY_AGENTS: AtomicBool = AtomicBool::new(false);

/// Select per-flow sender agents (`true`) or the shared flow slab
/// (`false`, the default) for subsequently built connections.
pub fn set_legacy_agents(on: bool) {
    LEGACY_AGENTS.store(on, Ordering::Relaxed);
}

/// True when per-flow sender agents are selected.
pub fn legacy_agents() -> bool {
    LEGACY_AGENTS.load(Ordering::Relaxed)
}

/// Install a sender/sink pair for `spec`, using `source` as the
/// application (defaults to [`Greedy`] via [`connect`]).
pub fn connect_with_source(
    sim: &mut Simulator,
    spec: ConnectionSpec,
    source: Box<dyn Source>,
) -> Connection {
    if legacy_agents() {
        return connect_legacy(sim, spec, source);
    }

    // One slab per simulator hosts every sender; create it lazily.
    let slab_id = match sim.find_agent_by::<FlowSlab>() {
        Some((id, _)) => id,
        None => {
            let id = sim.alloc_agent();
            sim.install_shared_agent(id, Box::new(FlowSlab::new()));
            id
        }
    };
    let sink_id = sim.alloc_agent();

    let mut cfg = TcpConfig::new(spec.flow, spec.dst, sink_id);
    cfg.ecn = spec.ecn;
    cfg.seed = spec.seed;
    cfg.record_samples = spec.record_samples;
    cfg.seg_size = spec.seg_size;
    let cc = spec.cc.build(spec.seed);
    let slab: &mut FlowSlab = sim.agent_mut(slab_id);
    let slot = slab.add_flow(cfg, cc, source, spec.src);

    let mut sink = TcpSink::new(spec.flow, spec.src, slab_id, 40);
    if let Some(timeout) = spec.delack {
        sink = sink.with_delayed_acks(timeout);
    }
    sim.install_agent(sink_id, spec.dst, Box::new(sink));

    Connection {
        flow: spec.flow,
        sender: slab_id,
        sink: sink_id,
        start_token: FlowSlab::start_token(slot),
        stop_token: FlowSlab::stop_token(slot),
    }
}

/// The pre-slab wiring: one [`TcpSender`] agent per flow.
fn connect_legacy(
    sim: &mut Simulator,
    spec: ConnectionSpec,
    source: Box<dyn Source>,
) -> Connection {
    let sender_id = sim.alloc_agent();
    let sink_id = sim.alloc_agent();

    let mut cfg = TcpConfig::new(spec.flow, spec.dst, sink_id);
    cfg.ecn = spec.ecn;
    cfg.seed = spec.seed;
    cfg.record_samples = spec.record_samples;
    cfg.seg_size = spec.seg_size;
    let cc = spec.cc.build(spec.seed);
    let sender = TcpSender::new(cfg, cc, source);
    sim.install_agent(sender_id, spec.src, Box::new(sender));

    let mut sink = TcpSink::new(spec.flow, spec.src, sender_id, 40);
    if let Some(timeout) = spec.delack {
        sink = sink.with_delayed_acks(timeout);
    }
    sim.install_agent(sink_id, spec.dst, Box::new(sink));

    Connection {
        flow: spec.flow,
        sender: sender_id,
        sink: sink_id,
        start_token: START_TOKEN,
        stop_token: STOP_TOKEN,
    }
}

/// Install a greedy (long-lived FTP) connection for `spec`.
pub fn connect(sim: &mut Simulator, spec: ConnectionSpec) -> Connection {
    connect_with_source(sim, spec, Box::new(Greedy))
}

// ---------------------------------------------------------------------
// Per-flow read-back that works in both hosting modes.
// ---------------------------------------------------------------------

/// Cumulative sender statistics of `conn`.
pub fn sender_stats(sim: &Simulator, conn: &Connection) -> SenderStats {
    if let Some(s) = sim.try_agent::<TcpSender>(conn.sender) {
        return *s.stats();
    }
    *sim.agent::<FlowSlab>(conn.sender).stats_of(conn.flow)
}

/// Per-ACK samples of `conn` (empty unless `record_samples`).
pub fn sender_samples<'a>(sim: &'a Simulator, conn: &Connection) -> &'a [AckSample] {
    if let Some(s) = sim.try_agent::<TcpSender>(conn.sender) {
        return s.samples();
    }
    sim.agent::<FlowSlab>(conn.sender).samples_of(conn.flow)
}

/// The congestion-control algorithm of `conn` (for downcasting).
pub fn sender_cc<'a>(sim: &'a Simulator, conn: &Connection) -> &'a dyn CcAlgorithm {
    if let Some(s) = sim.try_agent::<TcpSender>(conn.sender) {
        return s.cc();
    }
    sim.agent::<FlowSlab>(conn.sender).cc_of(conn.flow)
}

/// Current congestion window of `conn`, segments.
pub fn sender_cwnd(sim: &Simulator, conn: &Connection) -> f64 {
    if let Some(s) = sim.try_agent::<TcpSender>(conn.sender) {
        return s.cwnd();
    }
    sim.agent::<FlowSlab>(conn.sender).cwnd_of(conn.flow)
}

/// Current smoothed RTT estimate of `conn`, seconds.
pub fn sender_srtt(sim: &Simulator, conn: &Connection) -> Option<f64> {
    if let Some(s) = sim.try_agent::<TcpSender>(conn.sender) {
        return s.srtt();
    }
    sim.agent::<FlowSlab>(conn.sender).srtt_of(conn.flow)
}

/// True once `conn`'s flow has permanently finished.
pub fn sender_stopped(sim: &Simulator, conn: &Connection) -> bool {
    if let Some(s) = sim.try_agent::<TcpSender>(conn.sender) {
        return s.is_stopped();
    }
    sim.agent::<FlowSlab>(conn.sender).stopped_of(conn.flow)
}
