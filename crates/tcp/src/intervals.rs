//! A set of disjoint half-open `u64` intervals with O(log n) insertion and
//! merging — the receiver's out-of-order store and the basis of efficient
//! SACK-block generation.

use std::collections::BTreeMap;

#[cfg(feature = "audit")]
use pert_core::audit;

/// Differential shadow: the same set held as a plain `BTreeSet<u64>`,
/// the obviously-correct O(n) structure the interval map optimizes.
/// Attached at construction when auditing is enabled; every mutation is
/// replayed on it and cheap invariants compared per-op, with a full
/// structural comparison every 64th operation.
#[cfg(feature = "audit")]
#[derive(Clone, Debug, Default)]
struct Shadow {
    set: std::collections::BTreeSet<u64>,
    ops: u64,
}

/// Disjoint, maximally-merged set of half-open intervals `[start, end)`.
#[derive(Clone, Debug)]
pub struct IntervalSet {
    /// start → end, disjoint and non-adjacent.
    map: BTreeMap<u64, u64>,
    len: u64,
    #[cfg(feature = "audit")]
    shadow: Option<Box<Shadow>>,
}

impl Default for IntervalSet {
    fn default() -> Self {
        IntervalSet {
            map: BTreeMap::new(),
            len: 0,
            #[cfg(feature = "audit")]
            shadow: audit::enabled().then(Box::<Shadow>::default),
        }
    }
}

impl IntervalSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of integers covered.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if nothing is covered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of disjoint intervals.
    pub fn interval_count(&self) -> usize {
        self.map.len()
    }

    /// True if `x` is covered.
    pub fn contains(&self, x: u64) -> bool {
        self.map
            .range(..=x)
            .next_back()
            .is_some_and(|(_, &end)| x < end)
    }

    /// Insert the single integer `x`, merging with neighbours.
    /// Returns the (possibly merged) containing interval, and whether `x`
    /// was newly added (`false` = duplicate).
    pub fn insert(&mut self, x: u64) -> ((u64, u64), bool) {
        let res = self.insert_inner(x);
        #[cfg(feature = "audit")]
        self.shadow_check_insert(x, res);
        res
    }

    fn insert_inner(&mut self, x: u64) -> ((u64, u64), bool) {
        // Find a predecessor interval that touches or covers x.
        let mut start = x;
        let mut end = x + 1;
        if let Some((&s, &e)) = self.map.range(..=x).next_back() {
            if x < e {
                return ((s, e), false); // already covered
            }
            if e == x {
                // adjacent on the left: merge
                start = s;
                self.map.remove(&s);
            }
        }
        // Successor interval adjacent on the right?
        if let Some((&s, &e)) = self.map.range(x + 1..).next() {
            if s == x + 1 {
                end = e;
                self.map.remove(&s);
            }
        }
        self.map.insert(start, end);
        self.len += 1;
        ((start, end), true)
    }

    /// Remove everything below `cut` (exclusive upper bound `cut`).
    pub fn remove_below(&mut self, cut: u64) {
        // Intervals fully below cut: remove; one straddling: trim.
        let to_remove: Vec<u64> = self.map.range(..cut).map(|(&s, _)| s).collect();
        for s in to_remove {
            let e = self.map.remove(&s).expect("present");
            if e > cut {
                self.map.insert(cut, e);
                self.len -= cut - s;
            } else {
                self.len -= e - s;
            }
        }
        #[cfg(feature = "audit")]
        self.shadow_check_remove_below(cut);
    }

    #[cfg(feature = "audit")]
    fn shadow_check_insert(&mut self, x: u64, ((start, end), fresh): ((u64, u64), bool)) {
        let Some(shadow) = &mut self.shadow else {
            return;
        };
        let naive_fresh = shadow.set.insert(x);
        shadow.ops += 1;
        let structural = shadow.ops.is_multiple_of(64);
        let naive_len = shadow.set.len() as u64;
        audit::count_tcp_checks(1);
        if naive_fresh != fresh || self.len != naive_len || !(start <= x && x < end) {
            audit::violation(
                "interval-set",
                format_args!(
                    "insert({x}) diverged from the BTreeSet shadow: \
                     fresh={fresh} naive={naive_fresh}, len={} naive={naive_len}, \
                     interval=[{start},{end})",
                    self.len,
                ),
            );
        }
        if structural {
            self.verify_structure();
        }
    }

    #[cfg(feature = "audit")]
    fn shadow_check_remove_below(&mut self, cut: u64) {
        let Some(shadow) = &mut self.shadow else {
            return;
        };
        shadow.set = shadow.set.split_off(&cut);
        shadow.ops += 1;
        let structural = shadow.ops.is_multiple_of(64);
        let naive_len = shadow.set.len() as u64;
        audit::count_tcp_checks(1);
        if self.len != naive_len {
            audit::violation(
                "interval-set",
                format_args!(
                    "remove_below({cut}) diverged from the BTreeSet shadow: \
                     len={} naive={naive_len}",
                    self.len,
                ),
            );
        }
        if structural {
            self.verify_structure();
        }
    }

    /// Full structural comparison: rebuild maximal runs from the shadow
    /// and demand the interval map matches exactly.
    #[cfg(feature = "audit")]
    fn verify_structure(&self) {
        let Some(shadow) = &self.shadow else { return };
        let mut runs: Vec<(u64, u64)> = Vec::new();
        for &v in &shadow.set {
            match runs.last_mut() {
                Some((_, end)) if *end == v => *end = v + 1,
                _ => runs.push((v, v + 1)),
            }
        }
        let ours: Vec<(u64, u64)> = self.iter().collect();
        audit::count_tcp_checks(1);
        if ours != runs {
            audit::violation(
                "interval-set",
                format_args!(
                    "intervals diverged from the BTreeSet shadow: \
                     ours={ours:?} naive={runs:?}"
                ),
            );
        }
    }

    /// The first (lowest) interval.
    pub fn first(&self) -> Option<(u64, u64)> {
        self.map.iter().next().map(|(&s, &e)| (s, e))
    }

    /// The last (highest) interval.
    pub fn last(&self) -> Option<(u64, u64)> {
        self.map.iter().next_back().map(|(&s, &e)| (s, e))
    }

    /// Iterate all intervals in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.map.iter().map(|(&s, &e)| (s, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserts_merge_adjacent_runs() {
        let mut s = IntervalSet::new();
        assert_eq!(s.insert(5), ((5, 6), true));
        assert_eq!(s.insert(7), ((7, 8), true));
        assert_eq!(s.interval_count(), 2);
        // 6 bridges them.
        assert_eq!(s.insert(6), ((5, 8), true));
        assert_eq!(s.interval_count(), 1);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn duplicate_insert_reports_existing_interval() {
        let mut s = IntervalSet::new();
        s.insert(3);
        s.insert(4);
        let ((a, b), fresh) = s.insert(3);
        assert!(!fresh);
        assert_eq!((a, b), (3, 5));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn contains_checks_coverage() {
        let mut s = IntervalSet::new();
        for x in [1u64, 2, 3, 10] {
            s.insert(x);
        }
        assert!(s.contains(2));
        assert!(!s.contains(4));
        assert!(s.contains(10));
        assert!(!s.contains(0));
    }

    #[test]
    fn remove_below_trims_straddlers() {
        let mut s = IntervalSet::new();
        for x in 0..10u64 {
            s.insert(x);
        }
        s.insert(20);
        s.remove_below(5);
        assert_eq!(s.first(), Some((5, 10)));
        assert_eq!(s.len(), 6);
        s.remove_below(100);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn first_and_last() {
        let mut s = IntervalSet::new();
        s.insert(100);
        s.insert(3);
        s.insert(4);
        assert_eq!(s.first(), Some((3, 5)));
        assert_eq!(s.last(), Some((100, 101)));
    }

    #[test]
    fn many_random_inserts_stay_consistent() {
        let mut s = IntervalSet::new();
        let mut naive = std::collections::BTreeSet::new();
        let mut x = 12345u64;
        for _ in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 33) % 500;
            s.insert(v);
            naive.insert(v);
        }
        assert_eq!(s.len() as usize, naive.len());
        for v in 0..500u64 {
            assert_eq!(s.contains(v), naive.contains(&v), "mismatch at {v}");
        }
        // Intervals are disjoint, sorted and maximal.
        let ints: Vec<_> = s.iter().collect();
        for w in ints.windows(2) {
            assert!(w[0].1 < w[1].0, "overlap/adjacency: {w:?}");
        }
    }
}
