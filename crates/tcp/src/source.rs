//! Traffic sources: what a sender transmits and when.
//!
//! A [`Source`] feeds a [`crate::TcpSender`] a sequence of transfers
//! separated by think times. [`Greedy`] models the paper's "long-term"
//! (FTP) flows; finite and on/off sources underpin the web-session
//! workload built in the `workload` crate.

use rand::rngs::SmallRng;

/// The next thing a sender should transmit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Transfer {
    /// Idle (think) time before the transfer begins, seconds.
    pub think_secs: f64,
    /// Transfer length in segments.
    pub segments: u64,
}

/// Supplies a sender with successive transfers.
pub trait Source: Send {
    /// Called at start-up and whenever the previous transfer completes.
    /// `None` ends the flow permanently.
    fn next_transfer(&mut self, rng: &mut SmallRng) -> Option<Transfer>;
}

/// An infinite transfer: the long-lived FTP flow of the evaluation.
#[derive(Clone, Copy, Debug, Default)]
pub struct Greedy;

impl Source for Greedy {
    fn next_transfer(&mut self, _rng: &mut SmallRng) -> Option<Transfer> {
        Some(Transfer {
            think_secs: 0.0,
            segments: u64::MAX / 2, // effectively unbounded
        })
    }
}

/// A single fixed-size transfer, then silence.
#[derive(Clone, Copy, Debug)]
pub struct Finite {
    remaining: Option<u64>,
}

impl Finite {
    /// Transfer exactly `segments` segments once.
    pub fn new(segments: u64) -> Self {
        assert!(segments > 0, "transfer must be non-empty");
        Finite {
            remaining: Some(segments),
        }
    }
}

impl Source for Finite {
    fn next_transfer(&mut self, _rng: &mut SmallRng) -> Option<Transfer> {
        self.remaining.take().map(|segments| Transfer {
            think_secs: 0.0,
            segments,
        })
    }
}

/// A source driven by a boxed closure — used by the `workload` crate to
/// express web sessions (Pareto object sizes, exponential think times)
/// without a circular crate dependency.
pub struct FnSource<F>(pub F);

impl<F> Source for FnSource<F>
where
    F: FnMut(&mut SmallRng) -> Option<Transfer> + Send,
{
    fn next_transfer(&mut self, rng: &mut SmallRng) -> Option<Transfer> {
        (self.0)(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn greedy_never_ends() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut g = Greedy;
        for _ in 0..3 {
            let t = g.next_transfer(&mut rng).unwrap();
            assert_eq!(t.think_secs, 0.0);
            assert!(t.segments > u64::MAX / 4);
        }
    }

    #[test]
    fn finite_yields_once() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut f = Finite::new(50);
        assert_eq!(
            f.next_transfer(&mut rng),
            Some(Transfer {
                think_secs: 0.0,
                segments: 50
            })
        );
        assert_eq!(f.next_transfer(&mut rng), None);
    }

    #[test]
    fn fn_source_delegates() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut calls = 0;
        let mut s = FnSource(move |_rng: &mut SmallRng| {
            calls += 1;
            if calls <= 2 {
                Some(Transfer {
                    think_secs: 1.0,
                    segments: calls,
                })
            } else {
                None
            }
        });
        assert_eq!(s.next_transfer(&mut rng).unwrap().segments, 1);
        assert_eq!(s.next_transfer(&mut rng).unwrap().segments, 2);
        assert_eq!(s.next_transfer(&mut rng), None);
    }
}
