//! The struct-of-arrays flow slab: one shared agent hosting many TCP
//! senders.
//!
//! Per-flow agents carry two costs at scale: every flow is a separate
//! `Box<dyn Agent>` (pointer chase + heap spread per event), and the hot
//! per-ACK fields sit interleaved with cold configuration in one large
//! struct. The slab flips the layout: the hot parts ([`Wnd`],
//! [`RttState`], [`AppState`] — all `Copy`) live in parallel vectors
//! indexed by a dense slot, so dispatching a burst of ACKs walks compact
//! arrays, while the cold remainder ([`FlowCold`]) stays boxed per flow.
//!
//! The slab is installed once per simulator as a *shared* agent (it has no
//! home node; every flow records its own source node and transmits via
//! [`netsim::Ctx::send_from`]). Demultiplexing:
//!
//! * packets — ACKs carry the flow id; `flow → slot` is a dense lookup.
//! * timers — tokens carry `slot << 8 | kind`, so bits 8.. address the
//!   flow and the low byte selects the action (start/stop/transfer/RTO).
//!
//! The protocol logic is [`FlowView`]/[`FlowIo`] — the same code the
//! standalone [`TcpSender`](crate::TcpSender) runs — so slab and legacy
//! modes produce byte-identical schedules.

use std::any::Any;

use netsim::{Agent, Ctx, FlowId, NodeId, Packet, TimerToken};
use pert_core::predictors::AckSample;

use crate::cc::CcAlgorithm;
use crate::sender::{
    new_flow, AppState, FlowCold, FlowIo, FlowView, RttState, SenderStats, TcpConfig, Wnd,
    TOKEN_START, TOKEN_STOP,
};
use crate::source::Source;

/// Shared agent hosting every TCP sender of a simulation in
/// struct-of-arrays form. Build implicitly through
/// [`connect`](crate::connect) /
/// [`connect_with_source`](crate::connect_with_source); read results back
/// with the `sender_*` accessors in the crate root.
#[derive(Default)]
pub struct FlowSlab {
    // Hot state, parallel vectors keyed by slot.
    wnd: Vec<Wnd>,
    rtt: Vec<RttState>,
    app: Vec<AppState>,
    // Cold state and the flow's source node, same keying. The box is
    // deliberate: `FlowCold` is two orders of magnitude larger than the
    // hot rows, so boxing keeps slab growth cheap and keeps the cold
    // bytes entirely out of this vector's cache footprint. The option is
    // the shard-split seam: a slot is `None` while its flow lives on a
    // (different) shard's copy of the slab — touching it there is a bug
    // and panics rather than silently diverging.
    cold: Vec<Option<Box<FlowCold>>>,
    nodes: Vec<NodeId>,
    /// Dense `flow id → slot` map (flow ids are small consecutive
    /// integers in every topology builder).
    by_flow: Vec<Option<u32>>,
}

impl FlowSlab {
    /// An empty slab.
    pub fn new() -> Self {
        FlowSlab::default()
    }

    /// Number of flows hosted.
    pub fn len(&self) -> usize {
        self.cold.len()
    }

    /// True when the slab hosts no flows.
    pub fn is_empty(&self) -> bool {
        self.cold.is_empty()
    }

    /// Register a flow sending from `node`; returns its slot.
    pub fn add_flow(
        &mut self,
        cfg: TcpConfig,
        cc: Box<dyn CcAlgorithm>,
        source: Box<dyn Source>,
        node: NodeId,
    ) -> usize {
        let slot = self.cold.len();
        assert!(
            slot < (1usize << 56),
            "flow slot must fit above the token kind byte"
        );
        let flow = cfg.flow;
        let (wnd, rtt, app, cold) = new_flow(cfg, cc, source);
        self.wnd.push(wnd);
        self.rtt.push(rtt);
        self.app.push(app);
        self.cold.push(Some(Box::new(cold)));
        self.nodes.push(node);
        if self.by_flow.len() <= flow.index() {
            self.by_flow.resize(flow.index() + 1, None);
        }
        assert!(
            self.by_flow[flow.index()].is_none(),
            "flow {flow} registered twice in the slab"
        );
        self.by_flow[flow.index()] = Some(slot as u32);
        slot
    }

    /// The slot hosting `flow`, if registered.
    pub fn slot_of(&self, flow: FlowId) -> Option<usize> {
        self.by_flow
            .get(flow.index())
            .copied()
            .flatten()
            .map(|s| s as usize)
    }

    fn expect_slot(&self, flow: FlowId) -> usize {
        self.slot_of(flow)
            .unwrap_or_else(|| panic!("flow {flow} is not hosted by this slab"))
    }

    /// Timer token that starts `flow`'s slot (see
    /// [`START_TOKEN`](crate::START_TOKEN) for the standalone equivalent).
    pub fn start_token(slot: usize) -> TimerToken {
        TimerToken(TOKEN_START | ((slot as u64) << 8))
    }

    /// Timer token that stops `flow`'s slot.
    pub fn stop_token(slot: usize) -> TimerToken {
        TimerToken(TOKEN_STOP | ((slot as u64) << 8))
    }

    fn view(&mut self, slot: usize) -> FlowView<'_> {
        FlowView {
            wnd: &mut self.wnd[slot],
            rtt: &mut self.rtt[slot],
            app: &mut self.app[slot],
            cold: self.cold[slot]
                .as_mut()
                .expect("flow is hosted by another shard"),
        }
    }

    // --- per-flow read-back (mirrors the `TcpSender` accessors) ---------

    fn cold_of(&self, flow: FlowId) -> &FlowCold {
        self.cold[self.expect_slot(flow)]
            .as_ref()
            .expect("flow is hosted by another shard")
    }

    /// Cumulative statistics of `flow`.
    pub fn stats_of(&self, flow: FlowId) -> &SenderStats {
        &self.cold_of(flow).stats
    }

    /// Per-ACK samples of `flow` (empty unless `record_samples`).
    pub fn samples_of(&self, flow: FlowId) -> &[AckSample] {
        &self.cold_of(flow).samples
    }

    /// Congestion-control algorithm of `flow` (for downcasting).
    pub fn cc_of(&self, flow: FlowId) -> &dyn CcAlgorithm {
        self.cold_of(flow).cc.as_ref()
    }

    /// Current congestion window of `flow`, segments.
    pub fn cwnd_of(&self, flow: FlowId) -> f64 {
        self.wnd[self.expect_slot(flow)].cwnd
    }

    /// Current smoothed RTT estimate of `flow`, seconds.
    pub fn srtt_of(&self, flow: FlowId) -> Option<f64> {
        self.rtt[self.expect_slot(flow)].srtt
    }

    /// True once `flow` has permanently finished.
    pub fn stopped_of(&self, flow: FlowId) -> bool {
        self.app[self.expect_slot(flow)].stopped
    }

    /// True while `flow` is in loss recovery.
    pub fn in_recovery_of(&self, flow: FlowId) -> bool {
        self.wnd[self.expect_slot(flow)].recovery_point.is_some()
    }
}

impl Agent for FlowSlab {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        let slot = self.expect_slot(pkt.flow);
        let mut io = FlowIo {
            node: self.nodes[slot],
            token_bits: (slot as u64) << 8,
            ctx,
        };
        self.view(slot).handle_packet(pkt, &mut io);
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Ctx<'_>) {
        let slot = (token.0 >> 8) as usize;
        let mut io = FlowIo {
            node: self.nodes[slot],
            token_bits: (slot as u64) << 8,
            ctx,
        };
        self.view(slot).handle_timer(token.0 & 0xff, &mut io);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn shard_splittable(&self) -> bool {
        true
    }

    fn shard_route_timer(&self, token: TimerToken) -> Option<NodeId> {
        self.nodes.get((token.0 >> 8) as usize).copied()
    }

    fn shard_split(&mut self, n: usize, shard_of_node: &[usize]) -> Vec<Box<dyn Agent>> {
        // Every part gets full hot vectors and the full flow/node maps —
        // slot numbering and token routing stay identical everywhere —
        // but a flow's cold box (and thus the right to run it) moves to
        // the shard owning its source node. The husk keeps only `None`s.
        let mut parts: Vec<FlowSlab> = (0..n)
            .map(|_| FlowSlab {
                wnd: self.wnd.clone(),
                rtt: self.rtt.clone(),
                app: self.app.clone(),
                cold: (0..self.cold.len()).map(|_| None).collect(),
                nodes: self.nodes.clone(),
                by_flow: self.by_flow.clone(),
            })
            .collect();
        for slot in 0..self.cold.len() {
            let owner = shard_of_node[self.nodes[slot].index()];
            parts[owner].cold[slot] = self.cold[slot].take();
        }
        parts
            .into_iter()
            .map(|p| Box::new(p) as Box<dyn Agent>)
            .collect()
    }

    fn shard_merge(&mut self, parts: Vec<Box<dyn Agent>>) {
        // A part owns exactly the slots whose cold box it holds; take the
        // box home and copy that slot's (authoritative) hot rows with it.
        for mut part in parts {
            let slab = part
                .as_any_mut()
                .downcast_mut::<FlowSlab>()
                .expect("shard part of a FlowSlab must be a FlowSlab");
            for slot in 0..self.cold.len() {
                if let Some(cold) = slab.cold[slot].take() {
                    debug_assert!(
                        self.cold[slot].is_none(),
                        "slot {slot} merged from two shards"
                    );
                    self.cold[slot] = Some(cold);
                    self.wnd[slot] = slab.wnd[slot];
                    self.rtt[slot] = slab.rtt[slot];
                    self.app[slot] = slab.app[slot];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::Reno;
    use crate::source::Greedy;
    use netsim::AgentId;

    fn cfg(flow: usize) -> TcpConfig {
        TcpConfig::new(FlowId(flow), NodeId(1), AgentId(1))
    }

    #[test]
    fn slots_are_dense_and_flow_keyed() {
        let mut slab = FlowSlab::new();
        let s0 = slab.add_flow(cfg(7), Box::new(Reno::new()), Box::new(Greedy), NodeId(0));
        let s1 = slab.add_flow(cfg(3), Box::new(Reno::new()), Box::new(Greedy), NodeId(2));
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.slot_of(FlowId(7)), Some(0));
        assert_eq!(slab.slot_of(FlowId(3)), Some(1));
        assert_eq!(slab.slot_of(FlowId(0)), None);
        assert_eq!(slab.cwnd_of(FlowId(7)), 2.0);
        assert!(!slab.stopped_of(FlowId(3)));
    }

    #[test]
    fn tokens_embed_the_slot_above_the_kind_byte() {
        let t = FlowSlab::start_token(5);
        assert_eq!(t.0 & 0xff, TOKEN_START);
        assert_eq!(t.0 >> 8, 5);
        let t = FlowSlab::stop_token(1023);
        assert_eq!(t.0 & 0xff, TOKEN_STOP);
        assert_eq!(t.0 >> 8, 1023);
    }

    #[test]
    fn shard_split_moves_cold_state_to_owner_and_merges_back() {
        let mut slab = FlowSlab::new();
        slab.add_flow(cfg(0), Box::new(Reno::new()), Box::new(Greedy), NodeId(0));
        slab.add_flow(cfg(1), Box::new(Reno::new()), Box::new(Greedy), NodeId(1));
        assert_eq!(
            slab.shard_route_timer(FlowSlab::start_token(1)),
            Some(NodeId(1))
        );

        let mut parts = slab.shard_split(2, &[0, 1]);
        {
            let p0 = parts[0].as_any().downcast_ref::<FlowSlab>().unwrap();
            assert!(p0.cold[0].is_some() && p0.cold[1].is_none());
            let p1 = parts[1].as_any().downcast_ref::<FlowSlab>().unwrap();
            assert!(p1.cold[0].is_none() && p1.cold[1].is_some());
        }
        assert!(slab.cold.iter().all(Option::is_none));

        // Hot rows mutated on the owner must win at merge time.
        parts[1]
            .as_any_mut()
            .downcast_mut::<FlowSlab>()
            .unwrap()
            .wnd[1]
            .cwnd = 42.0;
        slab.shard_merge(parts);
        assert_eq!(slab.cwnd_of(FlowId(1)), 42.0);
        assert!(slab.cold.iter().all(Option::is_some));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_flow_registration_panics() {
        let mut slab = FlowSlab::new();
        slab.add_flow(cfg(1), Box::new(Reno::new()), Box::new(Greedy), NodeId(0));
        slab.add_flow(cfg(1), Box::new(Reno::new()), Box::new(Greedy), NodeId(0));
    }
}
