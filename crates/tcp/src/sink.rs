//! The TCP sink (receiver) agent.
//!
//! Acknowledges every data segment immediately (per-packet ACKs — the
//! paper's per-ACK RTT sampling assumes this, as Linux does for RTO
//! estimation), carries up to three SACK blocks describing out-of-order
//! data, echoes the segment's timestamp for exact sender-side RTT
//! measurement, and echoes CE marks as ECE (per-packet, i.e. "accurate
//! ECN" style; the sender rate-limits its reaction to once per RTT).
//!
//! Out-of-order data is kept in an interval set (O(log n) per segment),
//! and the SACK blocks reported are, in order: the block containing the
//! segment that triggered this ACK (RFC 2018's "most recent" rule), the
//! highest block (which drives the sender's FACK loss declaration), and
//! the lowest block.

use std::any::Any;

use netsim::{
    Agent, AgentId, Ctx, Ecn, FlowId, NodeId, Packet, Payload, SackBlock, SimDuration, SimTime,
    TimerToken, MAX_SACK_BLOCKS,
};

use crate::intervals::IntervalSet;

/// Timer token for the delayed-ACK timeout (low bits; epoch above).
const TOKEN_DELACK: u64 = 0xDA;

/// Receiver statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct SinkStats {
    /// Data segments received (including duplicates).
    pub segments_received: u64,
    /// Duplicate segments received.
    pub duplicates: u64,
    /// CE-marked segments received.
    pub marked: u64,
    /// Highest in-order sequence delivered (next expected).
    pub rcv_next: u64,
}

/// The sink agent: pair one with each [`crate::TcpSender`].
pub struct TcpSink {
    flow: FlowId,
    peer_node: NodeId,
    peer_agent: AgentId,
    ack_size: u32,
    rcv_next: u64,
    /// Out-of-order segments above `rcv_next`, as merged intervals.
    ooo: IntervalSet,
    /// Delayed-ACK timeout; `None` = acknowledge every segment (the
    /// paper's per-packet-ACK assumption).
    delack: Option<SimDuration>,
    /// In-order segments received since the last ACK was sent.
    pending: u32,
    /// Timestamp/OWD/ECE of the oldest unacknowledged trigger segment.
    pending_echo: Option<(SimTime, SimDuration, bool)>,
    /// Epoch invalidating stale delayed-ACK timers.
    delack_epoch: u64,
    /// Receiver statistics.
    pub stats: SinkStats,
}

impl TcpSink {
    /// Create a sink acknowledging back to (`peer_node`, `peer_agent`),
    /// acknowledging every data segment (no delayed ACKs).
    pub fn new(flow: FlowId, peer_node: NodeId, peer_agent: AgentId, ack_size: u32) -> Self {
        assert!(ack_size > 0);
        TcpSink {
            flow,
            peer_node,
            peer_agent,
            ack_size,
            rcv_next: 0,
            ooo: IntervalSet::new(),
            delack: None,
            pending: 0,
            pending_echo: None,
            delack_epoch: 0,
            stats: SinkStats::default(),
        }
    }

    /// Enable RFC-1122 delayed ACKs: acknowledge every second in-order
    /// segment or after `timeout`, whichever first; out-of-order arrivals
    /// and CE marks are acknowledged immediately (RFC 5681 duplicate-ACK
    /// and ECN behaviour). Halves the sender's RTT sampling rate — the
    /// `delack` ablation measures what that does to PERT's predictor.
    pub fn with_delayed_acks(mut self, timeout: SimDuration) -> Self {
        assert!(!timeout.is_zero());
        self.delack = Some(timeout);
        self
    }

    /// Accept `seq`; returns the interval it joined if it was out of
    /// order.
    fn accept(&mut self, seq: u64) -> Option<(u64, u64)> {
        if seq == self.rcv_next {
            self.rcv_next += 1;
            // Consume a now-contiguous leading interval, if any.
            if let Some((s, e)) = self.ooo.first() {
                if s == self.rcv_next {
                    self.rcv_next = e;
                    self.ooo.remove_below(e);
                }
            }
            None
        } else if seq > self.rcv_next {
            let (interval, fresh) = self.ooo.insert(seq);
            if !fresh {
                self.stats.duplicates += 1;
            }
            Some(interval)
        } else {
            self.stats.duplicates += 1;
            None
        }
    }

    /// Build up to [`MAX_SACK_BLOCKS`] SACK blocks: the triggering block
    /// first, then the highest, then the lowest (deduplicated).
    fn sack_blocks(&self, triggered: Option<(u64, u64)>) -> [Option<SackBlock>; MAX_SACK_BLOCKS] {
        let mut blocks = [None; MAX_SACK_BLOCKS];
        let mut n = 0;
        let mut push = |iv: Option<(u64, u64)>| {
            if let Some((s, e)) = iv {
                let b = SackBlock { start: s, end: e };
                if n < MAX_SACK_BLOCKS && !blocks[..n].contains(&Some(b)) {
                    blocks[n] = Some(b);
                    n += 1;
                }
            }
        };
        push(triggered);
        push(self.ooo.last());
        push(self.ooo.first());
        blocks
    }

    /// Emit an ACK now, echoing `(ts, owd, ece)`.
    fn send_ack(
        &mut self,
        ctx: &mut Ctx<'_>,
        triggered: Option<(u64, u64)>,
        ts_echo: SimTime,
        owd_echo: SimDuration,
        ece: bool,
    ) {
        self.pending = 0;
        self.pending_echo = None;
        self.delack_epoch += 1; // invalidate any armed delayed-ACK timer
        ctx.send(Packet {
            flow: self.flow,
            dst_node: self.peer_node,
            dst_agent: self.peer_agent,
            size_bytes: self.ack_size,
            ecn: Ecn::NotCapable, // ACKs are not ECN-capable (RFC 3168)
            sent_at: ctx.now(),
            payload: Payload::Ack {
                cum_ack: self.rcv_next,
                sack: self.sack_blocks(triggered),
                ts_echo,
                owd_echo,
                ece,
            },
        });
    }
}

impl Agent for TcpSink {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        let Payload::Data { seq, .. } = pkt.payload else {
            debug_assert!(false, "sink received a non-data packet");
            return;
        };
        self.stats.segments_received += 1;
        let ece = pkt.ecn.is_marked();
        if ece {
            self.stats.marked += 1;
        }

        let triggered = self.accept(seq);
        self.stats.rcv_next = self.rcv_next;
        let ts = pkt.sent_at;
        let owd = ctx.now().duration_since(pkt.sent_at);

        match self.delack {
            None => self.send_ack(ctx, triggered, ts, owd, ece),
            Some(timeout) => {
                // Immediate ACK on out-of-order data, CE marks, or every
                // second in-order segment; otherwise arm the timer.
                self.pending += 1;
                let held_ece = self.pending_echo.map(|(_, _, e)| e).unwrap_or(false);
                if self.pending_echo.is_none() {
                    self.pending_echo = Some((ts, owd, ece));
                }
                if triggered.is_some() || ece || self.pending >= 2 {
                    // Echo the *triggering* (most recent) segment's clock:
                    // its RTT is not inflated by the hold time, keeping the
                    // sender's delay signal accurate (the held segment's
                    // ECE, if any, is still propagated).
                    self.send_ack(ctx, triggered, ts, owd, ece || held_ece);
                } else if self.pending == 1 {
                    let token = TimerToken(TOKEN_DELACK | (self.delack_epoch << 16));
                    ctx.schedule(timeout, token);
                }
            }
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Ctx<'_>) {
        let expected = TimerToken(TOKEN_DELACK | (self.delack_epoch << 16));
        if token == expected && self.pending > 0 {
            if let Some((ts, owd, ece)) = self.pending_echo.take() {
                self.send_ack(ctx, None, ts, owd, ece);
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink() -> TcpSink {
        TcpSink::new(FlowId(0), NodeId(0), AgentId(0), 40)
    }

    #[test]
    fn in_order_advances_cumulative() {
        let mut s = sink();
        for seq in 0..5 {
            assert_eq!(s.accept(seq), None);
        }
        assert_eq!(s.rcv_next, 5);
        assert!(s.ooo.is_empty());
    }

    #[test]
    fn out_of_order_fills_hole() {
        let mut s = sink();
        s.accept(0);
        assert_eq!(s.accept(2), Some((2, 3)));
        assert_eq!(s.accept(3), Some((2, 4)));
        assert_eq!(s.rcv_next, 1);
        let blocks = s.sack_blocks(Some((2, 4)));
        assert_eq!(blocks[0], Some(SackBlock { start: 2, end: 4 }));
        // Filling the hole consumes the interval.
        s.accept(1);
        assert_eq!(s.rcv_next, 4);
        assert!(s.ooo.is_empty());
    }

    #[test]
    fn sack_blocks_cover_triggering_highest_lowest() {
        let mut s = sink();
        s.accept(0);
        for &seq in &[2u64, 3, 10, 20, 21] {
            s.accept(seq);
        }
        // A new arrival at 11 triggers; highest run is (20,22), lowest (2,4).
        let t = s.accept(11);
        assert_eq!(t, Some((10, 12)));
        let blocks = s.sack_blocks(t);
        assert_eq!(blocks[0], Some(SackBlock { start: 10, end: 12 }));
        assert_eq!(blocks[1], Some(SackBlock { start: 20, end: 22 }));
        assert_eq!(blocks[2], Some(SackBlock { start: 2, end: 4 }));
    }

    #[test]
    fn sack_blocks_deduplicate() {
        let mut s = sink();
        s.accept(0);
        s.accept(5);
        let t = s.accept(6);
        let blocks = s.sack_blocks(t);
        // Only one distinct interval exists.
        assert_eq!(blocks[0], Some(SackBlock { start: 5, end: 7 }));
        assert_eq!(blocks[1], None);
        assert_eq!(blocks[2], None);
    }

    #[test]
    fn duplicates_are_counted() {
        let mut s = sink();
        s.accept(0);
        s.accept(0); // below rcv_next
        s.accept(5);
        s.accept(5); // duplicate OOO
        assert_eq!(s.stats.duplicates, 2);
    }

    #[test]
    fn empty_ooo_yields_no_blocks() {
        let s = sink();
        assert_eq!(s.sack_blocks(None), [None; MAX_SACK_BLOCKS]);
    }

    #[test]
    fn long_reordering_run_consumed_in_one_step() {
        let mut s = sink();
        s.accept(0);
        for seq in 2..1000u64 {
            s.accept(seq);
        }
        assert_eq!(s.ooo.interval_count(), 1);
        s.accept(1);
        assert_eq!(s.rcv_next, 1000);
        assert!(s.ooo.is_empty());
    }
}
