//! The TCP sender: hot/cold split flow state plus the agent wrapper.
//!
//! A SACK-capable sender in the spirit of ns-2's `TCP/Sack1`, hosting any
//! [`CcAlgorithm`]: slow start / congestion avoidance, FACK-style loss
//! detection with fast retransmit and SACK-based recovery, retransmission
//! timeouts with exponential backoff, ECN (ECE-triggered reductions, one
//! per RTT), per-ACK RTT sampling through exact packet timestamps, and an
//! application [`Source`] that supplies successive transfers (greedy FTP
//! flows or think-time-separated web objects).
//!
//! Flow state is split by access pattern so the same logic can run either
//! as a standalone per-flow agent ([`TcpSender`]) or inside the
//! struct-of-arrays [`FlowSlab`](crate::FlowSlab):
//!
//! * [`Wnd`], [`RttState`], [`AppState`] — small `Copy` structs touched on
//!   every ACK; the slab stores them in parallel vectors so a scan over
//!   many flows stays in cache.
//! * [`FlowCold`] — everything else (config, boxed CC algorithm and
//!   source, scoreboard, RNG, stats, samples, telemetry), boxed per flow.
//!
//! All protocol logic lives on [`FlowView`] (a bundle of `&mut` borrows of
//! the four parts) and performs I/O through [`FlowIo`], which maps
//! `send`/`schedule` onto the hosting agent's identity. The float
//! arithmetic is therefore textually single-sourced: both paths produce
//! bit-identical traces.

use std::any::Any;

use netsim::{
    Agent, AgentId, Ctx, Ecn, FlowId, NodeId, Packet, Payload, SimDuration, SimTime, TimerToken,
};
use pert_core::predictors::AckSample;
#[cfg(feature = "telemetry")]
use pert_core::telemetry::{self, BucketHistogram};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::cc::{CcAction, CcAlgorithm, CcContext};
use crate::scoreboard::Scoreboard;
use crate::source::Source;

/// Timer token kinds (low 8 bits of the token; bits 8.. address the flow
/// slot when the flow lives in a [`FlowSlab`](crate::FlowSlab), and are 0
/// for a standalone [`TcpSender`]).
pub(crate) const TOKEN_START: u64 = 0;
pub(crate) const TOKEN_STOP: u64 = 1;
pub(crate) const TOKEN_NEW_TRANSFER: u64 = 2;
pub(crate) const TOKEN_RTO: u64 = 3;
pub(crate) const TOKEN_PACE: u64 = 4;

/// RFC 6298 §2.4 clock-granularity term `G`: the variance contribution to
/// the RTO never drops below this, so microsecond-RTT links cannot collapse
/// `srtt + 4·rttvar` toward zero and trip spurious timeouts from the
/// slightest jitter.
pub(crate) const RTO_GRANULARITY_SECS: f64 = 0.001;

/// The token used to start a standalone sender (schedule with
/// [`netsim::Simulator::schedule_agent_timer`]). Slab-hosted flows embed
/// their slot in the token; use [`Connection::start_token`]
/// (crate::Connection) which is correct in both modes.
pub const START_TOKEN: TimerToken = TimerToken(TOKEN_START);
/// The token used to stop a standalone sender (it ceases transmitting new
/// data). Slab-mode callers use [`Connection::stop_token`]
/// (crate::Connection).
pub const STOP_TOKEN: TimerToken = TimerToken(TOKEN_STOP);

/// Static sender configuration.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Flow id for tracing and accounting.
    pub flow: FlowId,
    /// Node hosting the sink.
    pub peer_node: NodeId,
    /// The sink agent.
    pub peer_agent: AgentId,
    /// Data segment wire size in bytes (default 1000, as in ns-2).
    pub seg_size: u32,
    /// ACK wire size in bytes (default 40).
    pub ack_size: u32,
    /// Send ECN-capable (ECT) segments.
    pub ecn: bool,
    /// Initial congestion window, segments.
    pub initial_cwnd: f64,
    /// Initial slow-start threshold, segments.
    pub initial_ssthresh: f64,
    /// Receiver-window clamp on the congestion window, segments.
    pub max_cwnd: f64,
    /// Minimum retransmission timeout (default 200 ms).
    pub min_rto: SimDuration,
    /// Maximum retransmission timeout (default 60 s).
    pub max_rto: SimDuration,
    /// Record one [`AckSample`] per ACK (time, RTT, cwnd) — used by the
    /// paper's predictor studies; off by default to bound memory.
    pub record_samples: bool,
    /// Seed for the sender-local RNG (think-time draws etc.).
    pub seed: u64,
}

impl TcpConfig {
    /// Reasonable defaults for a flow from this sender to
    /// (`peer_node`, `peer_agent`).
    pub fn new(flow: FlowId, peer_node: NodeId, peer_agent: AgentId) -> Self {
        TcpConfig {
            flow,
            peer_node,
            peer_agent,
            seg_size: 1000,
            ack_size: 40,
            ecn: false,
            initial_cwnd: 2.0,
            initial_ssthresh: f64::MAX,
            max_cwnd: f64::MAX,
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(60),
            record_samples: false,
            seed: 0,
        }
    }
}

/// Aggregate sender statistics (cumulative since flow start).
#[derive(Clone, Copy, Debug, Default)]
pub struct SenderStats {
    /// Segments cumulatively acknowledged (goodput measure).
    pub acked_segments: u64,
    /// Segments transmitted (including retransmissions).
    pub sent_segments: u64,
    /// Retransmitted segments.
    pub retransmits: u64,
    /// Fast-recovery episodes entered.
    pub loss_events: u64,
    /// Retransmission timeouts fired.
    pub timeouts: u64,
    /// ECE-triggered window reductions.
    pub ecn_reductions: u64,
    /// Early (delay-triggered) window reductions.
    pub early_reductions: u64,
}

// ---------------------------------------------------------------------
// Hot state: per-ACK fields, `Copy`, stored in parallel vectors by the
// flow slab.
// ---------------------------------------------------------------------

/// Congestion-window and sequence state (hot).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Wnd {
    pub cwnd: f64,
    pub ssthresh: f64,
    /// All sequence numbers below this are cumulatively acknowledged.
    pub high_ack: u64,
    /// Next new sequence number to transmit.
    pub next_seq: u64,
    /// Transmit sequence numbers strictly below this (current transfer end).
    pub limit_seq: u64,
    /// While `Some(p)`, the sender is in loss recovery until
    /// `high_ack ≥ p`; window reductions are suppressed meanwhile.
    pub recovery_point: Option<u64>,
}

/// RTT estimation and RTO ladder (hot).
///
/// The srtt/rttvar estimators stay f64 (they feed the CC algorithms'
/// float math), but everything the calendar sees — the RTO, its backoff
/// ladder, and the deadline — is exact integer nanoseconds.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RttState {
    pub srtt: Option<f64>,
    pub rttvar: f64,
    pub rto: SimDuration,
    pub backoff: u32,
    /// Absolute time the retransmission timer should fire
    /// ([`SimTime::MAX`] when idle).
    pub rto_deadline: SimTime,
    /// True while a timer event is pending in the calendar.
    pub rto_timer_pending: bool,
}

/// Application/ECN lifecycle flags (hot).
#[derive(Clone, Copy, Debug)]
pub(crate) struct AppState {
    pub ecn_hold_until: f64,
    pub started: bool,
    pub stopped: bool,
    pub awaiting_transfer: bool,
    /// Earliest time the next pacing quantum may leave (paced schemes
    /// only; [`SimTime::ZERO`] means "now").
    pub pace_next: SimTime,
    /// True while a `TOKEN_PACE` timer is pending in the calendar.
    pub pace_pending: bool,
}

/// Cold per-flow state: touched off the per-ACK fast path or behind a
/// pointer anyway. The slab boxes one per flow.
pub(crate) struct FlowCold {
    pub cfg: TcpConfig,
    pub cc: Box<dyn CcAlgorithm>,
    pub source: Box<dyn Source>,
    pub rng: SmallRng,
    pub scoreboard: Scoreboard,
    /// Segment count of the transfer announced by the pending
    /// `TOKEN_NEW_TRANSFER` timer (the token itself carries only the flow
    /// slot, so the size rides here).
    pub pending_transfer: Option<u64>,
    /// Cumulative statistics.
    pub stats: SenderStats,
    /// Optional per-ACK samples (`record_samples`).
    pub samples: Vec<AckSample>,

    // --- telemetry (attached at construction when the runtime flag is up;
    // --- `None` costs one branch per ACK) -------------------------------
    /// Publishes `tcp/cwnd` (key = flow id) on every ACK.
    #[cfg(feature = "telemetry")]
    pub tap: Option<telemetry::Tap>,
    /// Per-flow RTT histogram, merged into the global `tcp/rtt_ns` metric
    /// when the flow drops.
    #[cfg(feature = "telemetry")]
    pub rtt_hist: Option<BucketHistogram>,
}

/// Build the four state parts for a fresh flow. Shared by
/// [`TcpSender::new`] and `FlowSlab::add_flow`.
pub(crate) fn new_flow(
    cfg: TcpConfig,
    cc: Box<dyn CcAlgorithm>,
    source: Box<dyn Source>,
) -> (Wnd, RttState, AppState, FlowCold) {
    assert!(cfg.initial_cwnd >= 1.0, "initial cwnd must be ≥ 1");
    assert!(cfg.seg_size > 0 && cfg.ack_size > 0);
    assert!(!cfg.min_rto.is_zero() && cfg.max_rto >= cfg.min_rto);
    let seed = cfg.seed;
    #[cfg(feature = "telemetry")]
    let tap = telemetry::Tap::attach("tcp/cwnd", cfg.flow.0 as u64);
    #[cfg(feature = "telemetry")]
    let rtt_hist = telemetry::enabled().then(|| BucketHistogram::new(&telemetry::RTT_EDGES_NS));
    let wnd = Wnd {
        cwnd: cfg.initial_cwnd,
        ssthresh: cfg.initial_ssthresh,
        high_ack: 0,
        next_seq: 0,
        limit_seq: 0,
        recovery_point: None,
    };
    let rtt = RttState {
        srtt: None,
        rttvar: 0.0,
        rto: SimDuration::from_secs(1),
        backoff: 0,
        rto_deadline: SimTime::MAX,
        rto_timer_pending: false,
    };
    let app = AppState {
        ecn_hold_until: 0.0,
        started: false,
        stopped: false,
        awaiting_transfer: false,
        pace_next: SimTime::ZERO,
        pace_pending: false,
    };
    let cold = FlowCold {
        cfg,
        cc,
        source,
        rng: SmallRng::seed_from_u64(seed ^ 0x7c95_e4d3),
        scoreboard: Scoreboard::new(),
        pending_transfer: None,
        stats: SenderStats::default(),
        samples: Vec::new(),
        #[cfg(feature = "telemetry")]
        tap,
        #[cfg(feature = "telemetry")]
        rtt_hist,
    };
    (wnd, rtt, app, cold)
}

/// How flow logic reaches the simulator: packets leave from `node` (a
/// slab hosts endpoints on many nodes, so the agent's own node is not
/// enough), and timer tokens carry `token_bits` (the flow slot shifted
/// past the kind byte) so the hosting agent can demultiplex.
pub(crate) struct FlowIo<'a, 'b> {
    pub ctx: &'a mut Ctx<'b>,
    pub node: NodeId,
    pub token_bits: u64,
}

impl FlowIo<'_, '_> {
    #[inline]
    fn now(&self) -> SimTime {
        self.ctx.now()
    }

    #[inline]
    fn send(&mut self, pkt: Packet) {
        self.ctx.send_from(self.node, pkt);
    }

    #[inline]
    fn schedule(&mut self, delay: SimDuration, kind: u64) {
        self.ctx.schedule(delay, TimerToken(kind | self.token_bits));
    }
}

/// Mutable borrows of one flow's four state parts; all protocol logic
/// lives here so the standalone and slab paths execute the same code.
pub(crate) struct FlowView<'a> {
    pub wnd: &'a mut Wnd,
    pub rtt: &'a mut RttState,
    pub app: &'a mut AppState,
    pub cold: &'a mut FlowCold,
}

impl FlowView<'_> {
    fn effective_window(&self) -> u64 {
        self.wnd.cwnd.min(self.cold.cfg.max_cwnd).max(1.0).floor() as u64
    }

    fn send_segment(&mut self, io: &mut FlowIo<'_, '_>, seq: u64, retransmit: bool) {
        io.send(Packet {
            flow: self.cold.cfg.flow,
            dst_node: self.cold.cfg.peer_node,
            dst_agent: self.cold.cfg.peer_agent,
            size_bytes: self.cold.cfg.seg_size,
            ecn: if self.cold.cfg.ecn {
                Ecn::Capable
            } else {
                Ecn::NotCapable
            },
            sent_at: io.now(), // overwritten by the send path, kept for clarity
            payload: Payload::Data { seq, retransmit },
        });
        self.cold.stats.sent_segments += 1;
        if retransmit {
            self.cold.stats.retransmits += 1;
        }
    }

    /// Transmit one eligible segment (retransmissions first, then new
    /// data). Returns false when nothing was eligible.
    fn try_send_one(&mut self, io: &mut FlowIo<'_, '_>) -> bool {
        if let Some(seq) = self.cold.scoreboard.first_lost() {
            self.cold.scoreboard.on_retransmit(seq);
            self.send_segment(io, seq, true);
            true
        } else if self.wnd.next_seq < self.wnd.limit_seq {
            let seq = self.wnd.next_seq;
            self.wnd.next_seq += 1;
            self.cold.scoreboard.on_send_new(seq);
            self.send_segment(io, seq, false);
            true
        } else {
            false
        }
    }

    fn has_data_to_send(&self) -> bool {
        self.cold.scoreboard.first_lost().is_some() || self.wnd.next_seq < self.wnd.limit_seq
    }

    /// Transmit as much as the window allows: retransmissions first, then
    /// new data. Paced schemes (BBR) instead release quanta on the
    /// calendar via [`TOKEN_PACE`].
    fn send_available(&mut self, io: &mut FlowIo<'_, '_>) {
        if self.app.stopped || !self.app.started {
            return;
        }
        match self.cold.cc.pacing_rate() {
            Some(rate) if rate > 0.0 => self.send_paced(io, rate),
            _ => {
                let wnd = self.effective_window();
                while (self.cold.scoreboard.in_flight() as u64) < wnd {
                    if !self.try_send_one(io) {
                        break;
                    }
                }
            }
        }
        self.ensure_timer(io);
    }

    /// Arm a `TOKEN_PACE` timer for `pace_next` (coalesced: at most one
    /// pending at a time).
    fn schedule_pace(&mut self, io: &mut FlowIo<'_, '_>) {
        if self.app.pace_pending {
            return;
        }
        let now = io.now();
        let delay = if self.app.pace_next > now {
            self.app.pace_next.duration_since(now)
        } else {
            SimDuration::ZERO
        };
        io.schedule(delay, TOKEN_PACE);
        self.app.pace_pending = true;
    }

    /// Paced transmission: release up to one quantum (~1 ms of data at
    /// `rate` segments/s, clamped to [1, 64] segments) if the pacing clock
    /// allows, then book the next release on the calendar. All arithmetic
    /// is on exact integer time, so paced schedules stay byte-identical
    /// across hostings and shard counts.
    fn send_paced(&mut self, io: &mut FlowIo<'_, '_>, rate: f64) {
        let now = io.now();
        if now < self.app.pace_next {
            self.schedule_pace(io);
            return;
        }
        let wnd = self.effective_window();
        let quantum = ((rate * 0.001).ceil() as u64).clamp(1, 64);
        let mut sent = 0u64;
        while sent < quantum && (self.cold.scoreboard.in_flight() as u64) < wnd {
            if !self.try_send_one(io) {
                break;
            }
            sent += 1;
        }
        if sent > 0 {
            self.app.pace_next = now + SimDuration::from_secs_f64(sent as f64 / rate);
        }
        if (self.cold.scoreboard.in_flight() as u64) < wnd && self.has_data_to_send() {
            self.schedule_pace(io);
        }
    }

    // --- RTO management -------------------------------------------------

    /// The armed RTO: base estimate doubled per backoff step (capped at
    /// 2^16), clamped to the configured bounds — all in exact integer
    /// nanoseconds, so a deep backoff ladder lands on a deterministic
    /// nanosecond instead of accumulating float rounding.
    fn current_rto(&self) -> SimDuration {
        (self.rtt.rto * (1u64 << self.rtt.backoff.min(16)))
            .clamp(self.cold.cfg.min_rto, self.cold.cfg.max_rto)
    }

    fn restart_rto(&mut self, now: SimTime) {
        self.rtt.rto_deadline = now + self.current_rto();
    }

    fn ensure_timer(&mut self, io: &mut FlowIo<'_, '_>) {
        if self.cold.scoreboard.in_flight() == 0 && self.cold.scoreboard.lost_count() == 0 {
            self.rtt.rto_deadline = SimTime::MAX;
            return;
        }
        if self.rtt.rto_deadline == SimTime::MAX {
            self.restart_rto(io.now());
        }
        if !self.rtt.rto_timer_pending {
            let now = io.now();
            let delay = if self.rtt.rto_deadline > now {
                self.rtt.rto_deadline.duration_since(now)
            } else {
                SimDuration::ZERO
            };
            io.schedule(delay, TOKEN_RTO);
            self.rtt.rto_timer_pending = true;
        }
    }

    fn on_rto_timer(&mut self, io: &mut FlowIo<'_, '_>) {
        self.rtt.rto_timer_pending = false;
        if self.app.stopped || self.rtt.rto_deadline == SimTime::MAX {
            return;
        }
        let now = io.now();
        if now < self.rtt.rto_deadline {
            // Deadline was pushed forward by ACK progress; re-arm lazily.
            // Deadlines are exact nanoseconds, so this comparison needs no
            // epsilon — a timer that fires at its deadline is at it.
            self.ensure_timer(io);
            return;
        }
        // Genuine timeout.
        self.cold.stats.timeouts += 1;
        let prior_cwnd = self.wnd.cwnd;
        self.wnd.ssthresh = (self.wnd.cwnd / 2.0).max(2.0);
        self.wnd.cwnd = 1.0;
        self.rtt.backoff = (self.rtt.backoff + 1).min(16);
        self.cold.scoreboard.mark_all_lost();
        // A timeout ends any fast-recovery episode and starts a fresh one
        // so subsequent SACK losses don't re-cut the window immediately.
        // No `on_recovery_start`: post-RTO recovery is plain slow start
        // from cwnd = 1, not a PRR/inflight-governed episode.
        self.wnd.recovery_point = Some(self.wnd.next_seq);
        self.cold.cc.on_congestion_event(
            now.as_secs_f64(),
            prior_cwnd,
            self.cold.scoreboard.in_flight() as u64,
        );
        self.restart_rto(now);
        self.send_available(io);
    }

    // --- ACK processing --------------------------------------------------

    fn update_rtt(&mut self, sample: f64) {
        match self.rtt.srtt {
            None => {
                self.rtt.srtt = Some(sample);
                self.rtt.rttvar = sample / 2.0;
            }
            Some(s) => {
                self.rtt.rttvar = 0.75 * self.rtt.rttvar + 0.25 * (s - sample).abs();
                self.rtt.srtt = Some(0.875 * s + 0.125 * sample);
            }
        }
        let srtt = self.rtt.srtt.expect("just set");
        // One float→integer conversion per RTT sample; from here on all
        // RTO arithmetic (backoff, deadline) is exact. RFC 6298 §2.3/§2.4:
        // the variance term is floored at the clock granularity `G` so a
        // microsecond-RTT path (srtt and rttvar both ~µs) still yields an
        // RTO safely above the measurement noise; `min_rto` then applies
        // as the overall floor.
        self.rtt.rto =
            SimDuration::from_secs_f64(srtt + (4.0 * self.rtt.rttvar).max(RTO_GRANULARITY_SECS))
                .clamp(self.cold.cfg.min_rto, self.cold.cfg.max_rto);
    }

    /// A loss/ECN-triggered multiplicative decrease (at most one per
    /// recovery episode / per RTT for ECN). When the algorithm governs its
    /// own recovery (CUBIC's PRR, BBR) and this reduction *enters* fast
    /// recovery, only `ssthresh` is cut here — the in-recovery window is
    /// then driven by the algorithm's recovery hooks.
    fn congestion_reduce(&mut self, now: f64, entering_recovery: bool) {
        let factor = self.cold.cc.loss_reduction();
        let prior_cwnd = self.wnd.cwnd;
        self.wnd.ssthresh = (self.wnd.cwnd * (1.0 - factor)).max(2.0);
        if !(entering_recovery && self.cold.cc.governs_recovery()) {
            self.wnd.cwnd = self.wnd.ssthresh;
        }
        self.cold
            .cc
            .on_congestion_event(now, prior_cwnd, self.cold.scoreboard.in_flight() as u64);
    }

    fn on_ack_packet(
        &mut self,
        io: &mut FlowIo<'_, '_>,
        cum_ack: u64,
        sack: [Option<netsim::SackBlock>; netsim::MAX_SACK_BLOCKS],
        ts_echo: netsim::SimTime,
        owd: f64,
        ece: bool,
    ) {
        let now = io.now().as_secs_f64();
        let rtt = io.now().duration_since(ts_echo).as_secs_f64();
        if rtt > 0.0 {
            self.update_rtt(rtt);
        }

        // 1. Cumulative progress.
        let newly = if cum_ack > self.wnd.high_ack {
            let n = self.cold.scoreboard.ack_to(cum_ack);
            self.wnd.high_ack = cum_ack;
            self.cold.stats.acked_segments += n;
            self.rtt.backoff = 0;
            self.restart_rto(io.now());
            n
        } else {
            0
        };

        // 2. Recovery exit.
        if let Some(rp) = self.wnd.recovery_point {
            if self.wnd.high_ack >= rp {
                self.wnd.recovery_point = None;
                let mut ctx_cc = CcContext {
                    now,
                    rtt,
                    owd,
                    newly_acked: newly,
                    in_flight: self.cold.scoreboard.in_flight() as u64,
                    cwnd: &mut self.wnd.cwnd,
                    ssthresh: &mut self.wnd.ssthresh,
                };
                self.cold.cc.on_recovery_exit(&mut ctx_cc);
            }
        }

        // 3. SACK bookkeeping and loss declaration.
        for block in sack.into_iter().flatten() {
            self.cold.scoreboard.sack(block);
        }
        let new_losses = self.cold.scoreboard.declare_losses();
        if new_losses > 0 && self.wnd.recovery_point.is_none() {
            // Enter fast recovery: one multiplicative decrease per episode.
            self.wnd.recovery_point = Some(self.wnd.next_seq);
            self.cold.stats.loss_events += 1;
            self.congestion_reduce(now, true);
            self.cold
                .cc
                .on_recovery_start(now, self.cold.scoreboard.in_flight() as u64);
        }

        // 4. ECN response (once per RTT, not during loss recovery).
        if ece && now >= self.app.ecn_hold_until && self.wnd.recovery_point.is_none() {
            self.cold.stats.ecn_reductions += 1;
            self.congestion_reduce(now, false);
            self.app.ecn_hold_until =
                now + self.rtt.srtt.unwrap_or_else(|| self.rtt.rto.as_secs_f64());
        }

        // 5. Congestion-control growth / early response.
        if rtt > 0.0 {
            let mut ctx_cc = CcContext {
                now,
                rtt,
                owd,
                newly_acked: newly,
                in_flight: self.cold.scoreboard.in_flight() as u64,
                cwnd: &mut self.wnd.cwnd,
                ssthresh: &mut self.wnd.ssthresh,
            };
            if self.wnd.recovery_point.is_none() {
                match self.cold.cc.on_ack(&mut ctx_cc) {
                    CcAction::None => {}
                    CcAction::EarlyReduce { factor } => {
                        self.cold.stats.early_reductions += 1;
                        // ssthresh keeps the RFC 5681 floor of 2; the
                        // window itself may shrink to one segment so a
                        // heavily multiplexed link stays schedulable.
                        let reduced = self.wnd.cwnd * (1.0 - factor);
                        self.wnd.ssthresh = reduced.max(2.0);
                        self.wnd.cwnd = reduced.max(1.0);
                    }
                }
            } else {
                // In recovery the window is governed by the algorithm's
                // recovery hook. The default reproduces the historical
                // rule — hold the window, except post-RTO slow start:
                // after a timeout cwnd was reset to 1 with recovery_point
                // = next_seq, and without growth the sender would crawl at
                // one segment per RTT until the entire pre-timeout window
                // was re-covered. CUBIC overrides this with PRR, BBR with
                // its inflight cap.
                self.cold.cc.on_recovery_ack(&mut ctx_cc);
                self.cold.cc.on_rtt_sample(now, rtt, owd);
            }
        }
        self.wnd.cwnd = self.wnd.cwnd.min(self.cold.cfg.max_cwnd).max(1.0);

        #[cfg(feature = "telemetry")]
        {
            if let Some(tap) = &self.cold.tap {
                tap.record(now, self.wnd.cwnd);
            }
            if rtt > 0.0 {
                if let Some(h) = &mut self.cold.rtt_hist {
                    h.observe((rtt * 1e9) as u64);
                }
            }
        }

        if self.cold.cfg.record_samples && rtt > 0.0 {
            self.cold.samples.push(AckSample {
                at: now,
                rtt,
                owd,
                cwnd: self.wnd.cwnd,
            });
        }

        // 6. Transfer completion → ask the source for the next one.
        if !self.app.awaiting_transfer
            && !self.app.stopped
            && self.app.started
            && self.wnd.next_seq >= self.wnd.limit_seq
            && self.cold.scoreboard.is_empty()
        {
            self.begin_next_transfer(io);
        }

        // 7. Keep the pipe full.
        self.send_available(io);
    }

    fn begin_next_transfer(&mut self, io: &mut FlowIo<'_, '_>) {
        match self.cold.source.next_transfer(&mut self.cold.rng) {
            None => {
                self.app.stopped = true;
                self.rtt.rto_deadline = SimTime::MAX;
            }
            Some(t) => {
                self.app.awaiting_transfer = true;
                // Stash the size here; think time via timer. (The token's
                // high bits address the flow, so they can't carry it.)
                self.cold.pending_transfer = Some(t.segments);
                io.schedule(SimDuration::from_secs_f64(t.think_secs), TOKEN_NEW_TRANSFER);
            }
        }
    }

    fn on_new_transfer(&mut self, io: &mut FlowIo<'_, '_>) {
        let segments = self.cold.pending_transfer.take().unwrap_or(0);
        self.app.awaiting_transfer = false;
        if self.app.stopped {
            return;
        }
        self.wnd.limit_seq = self.wnd.limit_seq.saturating_add(segments);
        // Each transfer restarts from a fresh (small) window, modelling a
        // new connection of the same session over the same path.
        self.wnd.cwnd = self.cold.cfg.initial_cwnd;
        self.send_available(io);
    }

    /// Dispatch a packet delivered to this flow.
    pub(crate) fn handle_packet(&mut self, pkt: Packet, io: &mut FlowIo<'_, '_>) {
        if let Payload::Ack {
            cum_ack,
            sack,
            ts_echo,
            owd_echo,
            ece,
        } = pkt.payload
        {
            self.on_ack_packet(io, cum_ack, sack, ts_echo, owd_echo.as_secs_f64(), ece);
        }
        // Data packets addressed to a sender are a wiring bug; ignore in
        // release, catch in debug.
        debug_assert!(pkt.is_ack(), "sender received a data packet");
    }

    /// Dispatch a timer by its kind byte (token low 8 bits).
    pub(crate) fn handle_timer(&mut self, kind: u64, io: &mut FlowIo<'_, '_>) {
        match kind {
            TOKEN_START => {
                if !self.app.started {
                    self.app.started = true;
                    self.begin_next_transfer(io);
                }
            }
            TOKEN_STOP => {
                self.app.stopped = true;
                self.rtt.rto_deadline = SimTime::MAX;
            }
            TOKEN_NEW_TRANSFER => self.on_new_transfer(io),
            TOKEN_RTO => self.on_rto_timer(io),
            TOKEN_PACE => {
                self.app.pace_pending = false;
                self.send_available(io);
            }
            other => unreachable!("unknown sender timer token {other}"),
        }
    }
}

/// Flush cumulative per-flow statistics into the global telemetry metrics
/// registry. Lives on the cold part so both the standalone sender and the
/// slab flush every flow exactly once, whenever its state drops.
#[cfg(feature = "telemetry")]
impl Drop for FlowCold {
    fn drop(&mut self) {
        if self.tap.is_none() && self.rtt_hist.is_none() {
            return;
        }
        telemetry::counter_add("tcp/acked_segments", self.stats.acked_segments);
        telemetry::counter_add("tcp/sent_segments", self.stats.sent_segments);
        telemetry::counter_add("tcp/retransmits", self.stats.retransmits);
        telemetry::counter_add("tcp/loss_events", self.stats.loss_events);
        telemetry::counter_add("tcp/timeouts", self.stats.timeouts);
        telemetry::counter_add("tcp/ecn_reductions", self.stats.ecn_reductions);
        telemetry::counter_add("tcp/early_reductions", self.stats.early_reductions);
        if let Some(h) = &self.rtt_hist {
            telemetry::histogram_merge("tcp/rtt_ns", h);
        }
        // One record per flow with its final delivered-segment count —
        // the per-flow throughput sample Jain's fairness index is
        // derived from (key = flow id, summed per (scope, key)).
        telemetry::record(
            "tcp/acked_final",
            self.cfg.flow.0 as u64,
            0.0,
            self.stats.acked_segments as f64,
        );
    }
}

/// The standalone TCP sender agent: one flow per agent, installed on the
/// source node. Construct with [`TcpSender::new`], install, and kick off
/// with a [`START_TOKEN`] timer. The default topology builders instead
/// host flows in a shared [`FlowSlab`](crate::FlowSlab); this per-flow
/// agent remains as the `--legacy-agents` path and for direct unit tests.
pub struct TcpSender {
    pub(crate) wnd: Wnd,
    pub(crate) rtt: RttState,
    pub(crate) app: AppState,
    pub(crate) cold: FlowCold,
}

impl TcpSender {
    /// Create a sender using congestion control `cc` and application
    /// source `source`.
    pub fn new(cfg: TcpConfig, cc: Box<dyn CcAlgorithm>, source: Box<dyn Source>) -> Self {
        let (wnd, rtt, app, cold) = new_flow(cfg, cc, source);
        TcpSender {
            wnd,
            rtt,
            app,
            cold,
        }
    }

    pub(crate) fn view(&mut self) -> FlowView<'_> {
        FlowView {
            wnd: &mut self.wnd,
            rtt: &mut self.rtt,
            app: &mut self.app,
            cold: &mut self.cold,
        }
    }

    /// The congestion-control algorithm's name.
    pub fn cc_name(&self) -> &'static str {
        self.cold.cc.name()
    }

    /// Current congestion window, segments.
    pub fn cwnd(&self) -> f64 {
        self.wnd.cwnd
    }

    /// Current smoothed RTT estimate, seconds.
    pub fn srtt(&self) -> Option<f64> {
        self.rtt.srtt
    }

    /// True once the flow has permanently finished (source exhausted or
    /// stopped).
    pub fn is_stopped(&self) -> bool {
        self.app.stopped
    }

    /// True while the sender is in loss recovery.
    pub fn in_recovery(&self) -> bool {
        self.wnd.recovery_point.is_some()
    }

    /// Access the congestion-control algorithm (for downcasting in
    /// experiments).
    pub fn cc(&self) -> &dyn CcAlgorithm {
        self.cold.cc.as_ref()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &SenderStats {
        &self.cold.stats
    }

    /// Per-ACK samples (empty unless `record_samples`).
    pub fn samples(&self) -> &[AckSample] {
        &self.cold.samples
    }
}

impl Agent for TcpSender {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        let mut io = FlowIo {
            node: ctx.node,
            token_bits: 0,
            ctx,
        };
        self.view().handle_packet(pkt, &mut io);
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Ctx<'_>) {
        let mut io = FlowIo {
            node: ctx.node,
            token_bits: 0,
            ctx,
        };
        self.view().handle_timer(token.0 & 0xff, &mut io);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::Reno;
    use crate::source::Greedy;

    fn sender() -> TcpSender {
        TcpSender::new(
            TcpConfig::new(FlowId(0), NodeId(1), AgentId(1)),
            Box::new(Reno::new()),
            Box::new(Greedy),
        )
    }

    /// The RTO ladder exactly as the sender computed it before the
    /// integer-time migration: f64 seconds throughout, converted to
    /// nanoseconds only at the scheduling boundary.
    struct OldFloatRto {
        srtt: Option<f64>,
        rttvar: f64,
        rto: f64,
        min_rto: f64,
        max_rto: f64,
    }

    impl OldFloatRto {
        fn new() -> Self {
            OldFloatRto {
                srtt: None,
                rttvar: 0.0,
                rto: 1.0,
                min_rto: 0.2,
                max_rto: 60.0,
            }
        }

        fn update_rtt(&mut self, sample: f64) {
            match self.srtt {
                None => {
                    self.srtt = Some(sample);
                    self.rttvar = sample / 2.0;
                }
                Some(s) => {
                    self.rttvar = 0.75 * self.rttvar + 0.25 * (s - sample).abs();
                    self.srtt = Some(0.875 * s + 0.125 * sample);
                }
            }
            self.rto = (self.srtt.unwrap() + 4.0 * self.rttvar).clamp(self.min_rto, self.max_rto);
        }

        fn current_rto_ns(&self, backoff: u32) -> u64 {
            let secs =
                (self.rto * f64::from(1u32 << backoff.min(16))).clamp(self.min_rto, self.max_rto);
            // The old scheduling boundary: SimDuration::from_secs_f64.
            (secs * 1e9).round() as u64
        }
    }

    /// Regression for the float→integer RTO migration: for RTT samples as
    /// the simulator actually produces them (integer nanoseconds read
    /// back through `as_secs_f64`), every rung of the backoff ladder —
    /// through the 2^16 doubling cap and both RTO clamps — lands on the
    /// same nanosecond under the old float path and the new integer path.
    /// What the integer path *removes* is the old deadline arithmetic
    /// (`now + rto - now` in f64), which drifted once `now` grew large.
    #[test]
    fn backoff_ladder_matches_old_float_path() {
        // (description, RTT samples in ns)
        let cases: [(&str, &[u64]); 5] = [
            ("one 21.04 ms sample (the two_node_sim RTT)", &[21_040_000]),
            ("one 3 ns sample (min_rto clamp floor)", &[3]),
            ("one 150 ms sample (max_rto cap mid-ladder)", &[150_000_000]),
            (
                "EWMA over a jittery handful",
                &[21_040_000, 24_113_527, 19_998_001, 22_000_003, 21_500_750],
            ),
            (
                "one 2.5 s sample (cap reached by backoff 5)",
                &[2_500_000_000],
            ),
        ];
        for (what, samples) in cases {
            let mut new_path = sender();
            let mut old_path = OldFloatRto::new();
            for &ns in samples {
                let secs = SimDuration::from_nanos(ns).as_secs_f64();
                new_path.view().update_rtt(secs);
                old_path.update_rtt(secs);
            }
            for backoff in 0..=20u32 {
                new_path.rtt.backoff = backoff;
                let new_ns = new_path.view().current_rto().as_nanos();
                let old_ns = old_path.current_rto_ns(backoff);
                assert_eq!(
                    new_ns, old_ns,
                    "{what}: ladder diverged at backoff {backoff}: \
                     integer {new_ns} ns vs float {old_ns} ns"
                );
            }
            // The cap must engage: a deep ladder is exactly max_rto.
            new_path.rtt.backoff = 20;
            assert!(new_path.view().current_rto() <= SimDuration::from_secs(60));
        }
    }

    /// RFC 6298 granularity clamp: on a microsecond-RTT link with an
    /// aggressive `min_rto`, repeated near-identical samples drive
    /// `4·rttvar` toward zero — the RTO must still hold at least the
    /// clock granularity above `srtt`, not collapse to the raw
    /// `srtt + 4·rttvar` (which here would be ~50 µs and fire on any
    /// scheduling jitter).
    #[test]
    fn sub_millisecond_rtt_keeps_granularity_floor() {
        let mut s = sender();
        s.cold.cfg.min_rto = SimDuration::from_micros(1);
        s.cold.cfg.max_rto = SimDuration::from_secs(60);
        // 50 µs RTT samples, essentially noiseless.
        for _ in 0..200 {
            s.view().update_rtt(50e-6);
        }
        let srtt = s.rtt.srtt.unwrap();
        assert!(srtt < 60e-6, "srtt should track the ~50 µs path");
        assert!(
            4.0 * s.rtt.rttvar < RTO_GRANULARITY_SECS,
            "test premise: variance term must have decayed below G"
        );
        let rto = s.rtt.rto;
        assert!(
            rto >= SimDuration::from_secs_f64(RTO_GRANULARITY_SECS),
            "RTO {rto:?} fell below the granularity floor"
        );
        assert!(
            rto <= SimDuration::from_secs_f64(srtt + RTO_GRANULARITY_SECS)
                + SimDuration::from_nanos(1),
            "RTO {rto:?} should be srtt + G when variance has decayed"
        );
    }

    /// The doubling cap itself: backoff beyond 16 must not widen the RTO
    /// further (and must not overflow the integer multiply).
    #[test]
    fn backoff_caps_at_sixteen_doublings() {
        let mut s = sender();
        s.rtt.rto = SimDuration::from_micros(300); // below min_rto × 2^-16
        s.cold.cfg.min_rto = SimDuration::from_nanos(1);
        s.cold.cfg.max_rto = SimDuration::MAX;
        s.rtt.backoff = 16;
        let at_cap = s.view().current_rto();
        assert_eq!(at_cap, SimDuration::from_micros(300) * 65_536);
        s.rtt.backoff = 17;
        assert_eq!(s.view().current_rto(), at_cap);
        s.rtt.backoff = u32::MAX;
        assert_eq!(s.view().current_rto(), at_cap);
    }
}
