//! The TCP sender agent.
//!
//! A SACK-capable sender in the spirit of ns-2's `TCP/Sack1`, hosting any
//! [`CcAlgorithm`]: slow start / congestion avoidance, FACK-style loss
//! detection with fast retransmit and SACK-based recovery, retransmission
//! timeouts with exponential backoff, ECN (ECE-triggered reductions, one
//! per RTT), per-ACK RTT sampling through exact packet timestamps, and an
//! application [`Source`] that supplies successive transfers (greedy FTP
//! flows or think-time-separated web objects).

use std::any::Any;

use netsim::{
    Agent, AgentId, Ctx, Ecn, FlowId, NodeId, Packet, Payload, SimDuration, SimTime, TimerToken,
};
use pert_core::predictors::AckSample;
#[cfg(feature = "telemetry")]
use pert_core::telemetry::{self, BucketHistogram};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::cc::{CcAction, CcAlgorithm, CcContext};
use crate::scoreboard::Scoreboard;
use crate::source::Source;

/// Timer token kinds (low 8 bits of the token).
const TOKEN_START: u64 = 0;
const TOKEN_STOP: u64 = 1;
const TOKEN_NEW_TRANSFER: u64 = 2;
const TOKEN_RTO: u64 = 3;

/// The token used to start a sender (schedule with
/// [`netsim::Simulator::schedule_agent_timer`]).
pub const START_TOKEN: TimerToken = TimerToken(TOKEN_START);
/// The token used to stop a sender (it ceases transmitting new data).
pub const STOP_TOKEN: TimerToken = TimerToken(TOKEN_STOP);

/// Static sender configuration.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Flow id for tracing and accounting.
    pub flow: FlowId,
    /// Node hosting the sink.
    pub peer_node: NodeId,
    /// The sink agent.
    pub peer_agent: AgentId,
    /// Data segment wire size in bytes (default 1000, as in ns-2).
    pub seg_size: u32,
    /// ACK wire size in bytes (default 40).
    pub ack_size: u32,
    /// Send ECN-capable (ECT) segments.
    pub ecn: bool,
    /// Initial congestion window, segments.
    pub initial_cwnd: f64,
    /// Initial slow-start threshold, segments.
    pub initial_ssthresh: f64,
    /// Receiver-window clamp on the congestion window, segments.
    pub max_cwnd: f64,
    /// Minimum retransmission timeout (default 200 ms).
    pub min_rto: SimDuration,
    /// Maximum retransmission timeout (default 60 s).
    pub max_rto: SimDuration,
    /// Record one [`AckSample`] per ACK (time, RTT, cwnd) — used by the
    /// paper's predictor studies; off by default to bound memory.
    pub record_samples: bool,
    /// Seed for the sender-local RNG (think-time draws etc.).
    pub seed: u64,
}

impl TcpConfig {
    /// Reasonable defaults for a flow from this sender to
    /// (`peer_node`, `peer_agent`).
    pub fn new(flow: FlowId, peer_node: NodeId, peer_agent: AgentId) -> Self {
        TcpConfig {
            flow,
            peer_node,
            peer_agent,
            seg_size: 1000,
            ack_size: 40,
            ecn: false,
            initial_cwnd: 2.0,
            initial_ssthresh: f64::MAX,
            max_cwnd: f64::MAX,
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(60),
            record_samples: false,
            seed: 0,
        }
    }
}

/// Aggregate sender statistics (cumulative since flow start).
#[derive(Clone, Copy, Debug, Default)]
pub struct SenderStats {
    /// Segments cumulatively acknowledged (goodput measure).
    pub acked_segments: u64,
    /// Segments transmitted (including retransmissions).
    pub sent_segments: u64,
    /// Retransmitted segments.
    pub retransmits: u64,
    /// Fast-recovery episodes entered.
    pub loss_events: u64,
    /// Retransmission timeouts fired.
    pub timeouts: u64,
    /// ECE-triggered window reductions.
    pub ecn_reductions: u64,
    /// Early (delay-triggered) window reductions.
    pub early_reductions: u64,
}

/// The TCP sender agent. Construct with [`TcpSender::new`], install on a
/// node, and kick off with a [`START_TOKEN`] timer.
pub struct TcpSender {
    cfg: TcpConfig,
    cc: Box<dyn CcAlgorithm>,
    source: Box<dyn Source>,
    rng: SmallRng,

    // --- window state -------------------------------------------------
    cwnd: f64,
    ssthresh: f64,
    /// All sequence numbers below this are cumulatively acknowledged.
    high_ack: u64,
    /// Next new sequence number to transmit.
    next_seq: u64,
    /// Transmit sequence numbers strictly below this (current transfer end).
    limit_seq: u64,
    scoreboard: Scoreboard,
    /// While `Some(p)`, the sender is in loss recovery until
    /// `high_ack ≥ p`; window reductions are suppressed meanwhile.
    recovery_point: Option<u64>,

    // --- RTT estimation and RTO ----------------------------------------
    // The srtt/rttvar estimators stay f64 (they feed the CC algorithms'
    // float math), but everything the calendar sees — the RTO, its
    // backoff ladder, and the deadline — is exact integer nanoseconds.
    srtt: Option<f64>,
    rttvar: f64,
    rto: SimDuration,
    backoff: u32,
    /// Absolute time the retransmission timer should fire
    /// ([`SimTime::MAX`] when idle).
    rto_deadline: SimTime,
    /// True while a timer event is pending in the calendar.
    rto_timer_pending: bool,

    // --- ECN -----------------------------------------------------------
    ecn_hold_until: f64,

    // --- application ---------------------------------------------------
    started: bool,
    stopped: bool,
    awaiting_transfer: bool,

    /// Cumulative statistics.
    pub stats: SenderStats,
    /// Optional per-ACK samples (`record_samples`).
    pub samples: Vec<AckSample>,

    // --- telemetry (attached at construction when the runtime flag is up;
    // --- `None` costs one branch per ACK) -------------------------------
    /// Publishes `tcp/cwnd` (key = flow id) on every ACK.
    #[cfg(feature = "telemetry")]
    tap: Option<telemetry::Tap>,
    /// Per-flow RTT histogram, merged into the global `tcp/rtt_ns` metric
    /// when the sender drops.
    #[cfg(feature = "telemetry")]
    rtt_hist: Option<BucketHistogram>,
}

impl TcpSender {
    /// Create a sender using congestion control `cc` and application
    /// source `source`.
    pub fn new(cfg: TcpConfig, cc: Box<dyn CcAlgorithm>, source: Box<dyn Source>) -> Self {
        assert!(cfg.initial_cwnd >= 1.0, "initial cwnd must be ≥ 1");
        assert!(cfg.seg_size > 0 && cfg.ack_size > 0);
        assert!(!cfg.min_rto.is_zero() && cfg.max_rto >= cfg.min_rto);
        let seed = cfg.seed;
        #[cfg(feature = "telemetry")]
        let tap = telemetry::Tap::attach("tcp/cwnd", cfg.flow.0 as u64);
        #[cfg(feature = "telemetry")]
        let rtt_hist = telemetry::enabled().then(|| BucketHistogram::new(&telemetry::RTT_EDGES_NS));
        TcpSender {
            cwnd: cfg.initial_cwnd,
            ssthresh: cfg.initial_ssthresh,
            cfg,
            cc,
            source,
            rng: SmallRng::seed_from_u64(seed ^ 0x7c95_e4d3),
            high_ack: 0,
            next_seq: 0,
            limit_seq: 0,
            scoreboard: Scoreboard::new(),
            recovery_point: None,
            srtt: None,
            rttvar: 0.0,
            rto: SimDuration::from_secs(1),
            backoff: 0,
            rto_deadline: SimTime::MAX,
            rto_timer_pending: false,
            ecn_hold_until: 0.0,
            started: false,
            stopped: false,
            awaiting_transfer: false,
            stats: SenderStats::default(),
            samples: Vec::new(),
            #[cfg(feature = "telemetry")]
            tap,
            #[cfg(feature = "telemetry")]
            rtt_hist,
        }
    }

    /// The congestion-control algorithm's name.
    pub fn cc_name(&self) -> &'static str {
        self.cc.name()
    }

    /// Current congestion window, segments.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Current smoothed RTT estimate, seconds.
    pub fn srtt(&self) -> Option<f64> {
        self.srtt
    }

    /// True once the flow has permanently finished (source exhausted or
    /// stopped).
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    /// True while the sender is in loss recovery.
    pub fn in_recovery(&self) -> bool {
        self.recovery_point.is_some()
    }

    /// Access the congestion-control algorithm (for downcasting in
    /// experiments).
    pub fn cc(&self) -> &dyn CcAlgorithm {
        self.cc.as_ref()
    }

    // ------------------------------------------------------------------

    fn effective_window(&self) -> u64 {
        self.cwnd.min(self.cfg.max_cwnd).max(1.0).floor() as u64
    }

    fn send_segment(&mut self, ctx: &mut Ctx<'_>, seq: u64, retransmit: bool) {
        ctx.send(Packet {
            flow: self.cfg.flow,
            dst_node: self.cfg.peer_node,
            dst_agent: self.cfg.peer_agent,
            size_bytes: self.cfg.seg_size,
            ecn: if self.cfg.ecn {
                Ecn::Capable
            } else {
                Ecn::NotCapable
            },
            sent_at: ctx.now(), // overwritten by ctx.send, kept for clarity
            payload: Payload::Data { seq, retransmit },
        });
        self.stats.sent_segments += 1;
        if retransmit {
            self.stats.retransmits += 1;
        }
    }

    /// Transmit as much as the window allows: retransmissions first, then
    /// new data.
    fn send_available(&mut self, ctx: &mut Ctx<'_>) {
        if self.stopped || !self.started {
            return;
        }
        let wnd = self.effective_window();
        while (self.scoreboard.in_flight() as u64) < wnd {
            if let Some(seq) = self.scoreboard.first_lost() {
                self.scoreboard.on_retransmit(seq);
                self.send_segment(ctx, seq, true);
            } else if self.next_seq < self.limit_seq {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.scoreboard.on_send_new(seq);
                self.send_segment(ctx, seq, false);
            } else {
                break;
            }
        }
        self.ensure_timer(ctx);
    }

    // --- RTO management -------------------------------------------------

    /// The armed RTO: base estimate doubled per backoff step (capped at
    /// 2^16), clamped to the configured bounds — all in exact integer
    /// nanoseconds, so a deep backoff ladder lands on a deterministic
    /// nanosecond instead of accumulating float rounding.
    fn current_rto(&self) -> SimDuration {
        (self.rto * (1u64 << self.backoff.min(16))).clamp(self.cfg.min_rto, self.cfg.max_rto)
    }

    fn restart_rto(&mut self, now: SimTime) {
        self.rto_deadline = now + self.current_rto();
    }

    fn ensure_timer(&mut self, ctx: &mut Ctx<'_>) {
        if self.scoreboard.in_flight() == 0 && self.scoreboard.lost_count() == 0 {
            self.rto_deadline = SimTime::MAX;
            return;
        }
        if self.rto_deadline == SimTime::MAX {
            self.restart_rto(ctx.now());
        }
        if !self.rto_timer_pending {
            let now = ctx.now();
            let delay = if self.rto_deadline > now {
                self.rto_deadline.duration_since(now)
            } else {
                SimDuration::ZERO
            };
            ctx.schedule(delay, TimerToken(TOKEN_RTO));
            self.rto_timer_pending = true;
        }
    }

    fn on_rto_timer(&mut self, ctx: &mut Ctx<'_>) {
        self.rto_timer_pending = false;
        if self.stopped || self.rto_deadline == SimTime::MAX {
            return;
        }
        let now = ctx.now();
        if now < self.rto_deadline {
            // Deadline was pushed forward by ACK progress; re-arm lazily.
            // Deadlines are exact nanoseconds, so this comparison needs no
            // epsilon — a timer that fires at its deadline is at it.
            self.ensure_timer(ctx);
            return;
        }
        // Genuine timeout.
        self.stats.timeouts += 1;
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.backoff = (self.backoff + 1).min(16);
        self.scoreboard.mark_all_lost();
        // A timeout ends any fast-recovery episode and starts a fresh one
        // so subsequent SACK losses don't re-cut the window immediately.
        self.recovery_point = Some(self.next_seq);
        self.cc.on_congestion(now.as_secs_f64());
        self.restart_rto(now);
        self.send_available(ctx);
    }

    // --- ACK processing --------------------------------------------------

    fn update_rtt(&mut self, sample: f64) {
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2.0;
            }
            Some(s) => {
                self.rttvar = 0.75 * self.rttvar + 0.25 * (s - sample).abs();
                self.srtt = Some(0.875 * s + 0.125 * sample);
            }
        }
        let srtt = self.srtt.expect("just set");
        // One float→integer conversion per RTT sample; from here on all
        // RTO arithmetic (backoff, deadline) is exact.
        self.rto = SimDuration::from_secs_f64(srtt + 4.0 * self.rttvar)
            .clamp(self.cfg.min_rto, self.cfg.max_rto);
    }

    /// A loss/ECN-triggered multiplicative decrease (at most one per
    /// recovery episode / per RTT for ECN).
    fn congestion_reduce(&mut self, now: f64) {
        let factor = self.cc.loss_reduction();
        self.ssthresh = (self.cwnd * (1.0 - factor)).max(2.0);
        self.cwnd = self.ssthresh;
        self.cc.on_congestion(now);
    }

    #[allow(clippy::too_many_arguments)]
    fn on_ack_packet(
        &mut self,
        ctx: &mut Ctx<'_>,
        cum_ack: u64,
        sack: [Option<netsim::SackBlock>; netsim::MAX_SACK_BLOCKS],
        ts_echo: netsim::SimTime,
        owd: f64,
        ece: bool,
    ) {
        let now = ctx.now().as_secs_f64();
        let rtt = ctx.now().duration_since(ts_echo).as_secs_f64();
        if rtt > 0.0 {
            self.update_rtt(rtt);
        }

        // 1. Cumulative progress.
        let newly = if cum_ack > self.high_ack {
            let n = self.scoreboard.ack_to(cum_ack);
            self.high_ack = cum_ack;
            self.stats.acked_segments += n;
            self.backoff = 0;
            self.restart_rto(ctx.now());
            n
        } else {
            0
        };

        // 2. Recovery exit.
        if let Some(rp) = self.recovery_point {
            if self.high_ack >= rp {
                self.recovery_point = None;
            }
        }

        // 3. SACK bookkeeping and loss declaration.
        for block in sack.into_iter().flatten() {
            self.scoreboard.sack(block);
        }
        let new_losses = self.scoreboard.declare_losses();
        if new_losses > 0 && self.recovery_point.is_none() {
            // Enter fast recovery: one multiplicative decrease per episode.
            self.recovery_point = Some(self.next_seq);
            self.stats.loss_events += 1;
            self.congestion_reduce(now);
        }

        // 4. ECN response (once per RTT, not during loss recovery).
        if ece && now >= self.ecn_hold_until && self.recovery_point.is_none() {
            self.stats.ecn_reductions += 1;
            self.congestion_reduce(now);
            self.ecn_hold_until = now + self.srtt.unwrap_or_else(|| self.rto.as_secs_f64());
        }

        // 5. Congestion-control growth / early response.
        if rtt > 0.0 {
            if self.recovery_point.is_none() {
                let mut ctx_cc = CcContext {
                    now,
                    rtt,
                    owd,
                    newly_acked: newly,
                    cwnd: &mut self.cwnd,
                    ssthresh: &mut self.ssthresh,
                };
                match self.cc.on_ack(&mut ctx_cc) {
                    CcAction::None => {}
                    CcAction::EarlyReduce { factor } => {
                        self.stats.early_reductions += 1;
                        self.ssthresh = (self.cwnd * (1.0 - factor)).max(1.0);
                        self.cwnd = self.ssthresh;
                    }
                }
            } else {
                // In recovery the window is not grown by the CC algorithm —
                // except for post-RTO slow start: after a timeout cwnd was
                // reset to 1 with recovery_point = next_seq, and without
                // growth the sender would crawl at one segment per RTT
                // until the entire pre-timeout window was re-covered.
                if self.cwnd < self.ssthresh {
                    self.cwnd += newly as f64;
                }
                self.cc.on_rtt_sample(now, rtt, owd);
            }
        }
        self.cwnd = self.cwnd.min(self.cfg.max_cwnd).max(1.0);

        #[cfg(feature = "telemetry")]
        {
            if let Some(tap) = &self.tap {
                tap.record(now, self.cwnd);
            }
            if rtt > 0.0 {
                if let Some(h) = &mut self.rtt_hist {
                    h.observe((rtt * 1e9) as u64);
                }
            }
        }

        if self.cfg.record_samples && rtt > 0.0 {
            self.samples.push(AckSample {
                at: now,
                rtt,
                owd,
                cwnd: self.cwnd,
            });
        }

        // 6. Transfer completion → ask the source for the next one.
        if !self.awaiting_transfer
            && !self.stopped
            && self.started
            && self.next_seq >= self.limit_seq
            && self.scoreboard.is_empty()
        {
            self.begin_next_transfer(ctx);
        }

        // 7. Keep the pipe full.
        self.send_available(ctx);
    }

    fn begin_next_transfer(&mut self, ctx: &mut Ctx<'_>) {
        match self.source.next_transfer(&mut self.rng) {
            None => {
                self.stopped = true;
                self.rto_deadline = SimTime::MAX;
            }
            Some(t) => {
                self.awaiting_transfer = true;
                // Stash the size in the token payload; think time via timer.
                let token = TimerToken(TOKEN_NEW_TRANSFER | (t.segments << 8));
                ctx.schedule(SimDuration::from_secs_f64(t.think_secs), token);
            }
        }
    }

    fn on_new_transfer(&mut self, segments: u64, ctx: &mut Ctx<'_>) {
        self.awaiting_transfer = false;
        if self.stopped {
            return;
        }
        self.limit_seq = self.limit_seq.saturating_add(segments);
        // Each transfer restarts from a fresh (small) window, modelling a
        // new connection of the same session over the same path.
        self.cwnd = self.cfg.initial_cwnd;
        self.send_available(ctx);
    }
}

impl Agent for TcpSender {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        if let Payload::Ack {
            cum_ack,
            sack,
            ts_echo,
            owd_echo,
            ece,
        } = pkt.payload
        {
            self.on_ack_packet(ctx, cum_ack, sack, ts_echo, owd_echo.as_secs_f64(), ece);
        }
        // Data packets addressed to a sender are a wiring bug; ignore in
        // release, catch in debug.
        debug_assert!(pkt.is_ack(), "sender received a data packet");
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Ctx<'_>) {
        match token.0 & 0xff {
            TOKEN_START => {
                if !self.started {
                    self.started = true;
                    self.begin_next_transfer(ctx);
                }
            }
            TOKEN_STOP => {
                self.stopped = true;
                self.rto_deadline = SimTime::MAX;
            }
            TOKEN_NEW_TRANSFER => self.on_new_transfer(token.0 >> 8, ctx),
            TOKEN_RTO => self.on_rto_timer(ctx),
            other => unreachable!("unknown sender timer token {other}"),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Flush cumulative per-flow statistics into the global telemetry metrics
/// registry. Inactive (early return) for senders built with telemetry off.
#[cfg(feature = "telemetry")]
impl Drop for TcpSender {
    fn drop(&mut self) {
        if self.tap.is_none() && self.rtt_hist.is_none() {
            return;
        }
        telemetry::counter_add("tcp/acked_segments", self.stats.acked_segments);
        telemetry::counter_add("tcp/sent_segments", self.stats.sent_segments);
        telemetry::counter_add("tcp/retransmits", self.stats.retransmits);
        telemetry::counter_add("tcp/loss_events", self.stats.loss_events);
        telemetry::counter_add("tcp/timeouts", self.stats.timeouts);
        telemetry::counter_add("tcp/ecn_reductions", self.stats.ecn_reductions);
        telemetry::counter_add("tcp/early_reductions", self.stats.early_reductions);
        if let Some(h) = &self.rtt_hist {
            telemetry::histogram_merge("tcp/rtt_ns", h);
        }
        // One record per flow with its final delivered-segment count —
        // the per-flow throughput sample Jain's fairness index is
        // derived from (key = flow id, summed per (scope, key)).
        telemetry::record(
            "tcp/acked_final",
            self.cfg.flow.0 as u64,
            0.0,
            self.stats.acked_segments as f64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::Reno;
    use crate::source::Greedy;

    fn sender() -> TcpSender {
        TcpSender::new(
            TcpConfig::new(FlowId(0), NodeId(1), AgentId(1)),
            Box::new(Reno::new()),
            Box::new(Greedy),
        )
    }

    /// The RTO ladder exactly as the sender computed it before the
    /// integer-time migration: f64 seconds throughout, converted to
    /// nanoseconds only at the scheduling boundary.
    struct OldFloatRto {
        srtt: Option<f64>,
        rttvar: f64,
        rto: f64,
        min_rto: f64,
        max_rto: f64,
    }

    impl OldFloatRto {
        fn new() -> Self {
            OldFloatRto {
                srtt: None,
                rttvar: 0.0,
                rto: 1.0,
                min_rto: 0.2,
                max_rto: 60.0,
            }
        }

        fn update_rtt(&mut self, sample: f64) {
            match self.srtt {
                None => {
                    self.srtt = Some(sample);
                    self.rttvar = sample / 2.0;
                }
                Some(s) => {
                    self.rttvar = 0.75 * self.rttvar + 0.25 * (s - sample).abs();
                    self.srtt = Some(0.875 * s + 0.125 * sample);
                }
            }
            self.rto = (self.srtt.unwrap() + 4.0 * self.rttvar).clamp(self.min_rto, self.max_rto);
        }

        fn current_rto_ns(&self, backoff: u32) -> u64 {
            let secs =
                (self.rto * f64::from(1u32 << backoff.min(16))).clamp(self.min_rto, self.max_rto);
            // The old scheduling boundary: SimDuration::from_secs_f64.
            (secs * 1e9).round() as u64
        }
    }

    /// Regression for the float→integer RTO migration: for RTT samples as
    /// the simulator actually produces them (integer nanoseconds read
    /// back through `as_secs_f64`), every rung of the backoff ladder —
    /// through the 2^16 doubling cap and both RTO clamps — lands on the
    /// same nanosecond under the old float path and the new integer path.
    /// What the integer path *removes* is the old deadline arithmetic
    /// (`now + rto - now` in f64), which drifted once `now` grew large.
    #[test]
    fn backoff_ladder_matches_old_float_path() {
        // (description, RTT samples in ns)
        let cases: [(&str, &[u64]); 5] = [
            ("one 21.04 ms sample (the two_node_sim RTT)", &[21_040_000]),
            ("one 3 ns sample (min_rto clamp floor)", &[3]),
            ("one 150 ms sample (max_rto cap mid-ladder)", &[150_000_000]),
            (
                "EWMA over a jittery handful",
                &[21_040_000, 24_113_527, 19_998_001, 22_000_003, 21_500_750],
            ),
            (
                "one 2.5 s sample (cap reached by backoff 5)",
                &[2_500_000_000],
            ),
        ];
        for (what, samples) in cases {
            let mut new_path = sender();
            let mut old_path = OldFloatRto::new();
            for &ns in samples {
                let secs = SimDuration::from_nanos(ns).as_secs_f64();
                new_path.update_rtt(secs);
                old_path.update_rtt(secs);
            }
            for backoff in 0..=20u32 {
                new_path.backoff = backoff;
                let new_ns = new_path.current_rto().as_nanos();
                let old_ns = old_path.current_rto_ns(backoff);
                assert_eq!(
                    new_ns, old_ns,
                    "{what}: ladder diverged at backoff {backoff}: \
                     integer {new_ns} ns vs float {old_ns} ns"
                );
            }
            // The cap must engage: a deep ladder is exactly max_rto.
            new_path.backoff = 20;
            assert!(new_path.current_rto() <= SimDuration::from_secs(60));
        }
    }

    /// The doubling cap itself: backoff beyond 16 must not widen the RTO
    /// further (and must not overflow the integer multiply).
    #[test]
    fn backoff_caps_at_sixteen_doublings() {
        let mut s = sender();
        s.rto = SimDuration::from_micros(300); // below min_rto × 2^-16
        s.cfg.min_rto = SimDuration::from_nanos(1);
        s.cfg.max_rto = SimDuration::MAX;
        s.backoff = 16;
        let at_cap = s.current_rto();
        assert_eq!(at_cap, SimDuration::from_micros(300) * 65_536);
        s.backoff = 17;
        assert_eq!(s.current_rto(), at_cap);
        s.backoff = u32::MAX;
        assert_eq!(s.current_rto(), at_cap);
    }
}
