//! The SACK scoreboard: per-segment delivery state for the send window.
//!
//! Tracks every transmitted-but-unacknowledged segment as one of
//! `InFlight` (sent, no information), `Sacked` (selectively acknowledged),
//! `Lost` (declared lost, awaiting retransmission) or `Retx`
//! (retransmitted, outcome pending). Loss declaration follows the
//! forward-acknowledgment (FACK) rule: a segment is lost once a segment at
//! least [`DUP_THRESH`] positions above it has been SACKed — the
//! SACK-based equivalent of TCP's three-duplicate-ACK threshold.
//!
//! All bookkeeping is incremental: `in_flight()` and `first_lost()` are
//! O(1)/O(log n), and the FACK sweep visits each sequence number at most
//! once over the window's lifetime (watermark-based), so processing stays
//! linear in packets even for very large windows.

use std::collections::{BTreeMap, BTreeSet};

#[cfg(feature = "audit")]
use pert_core::audit;

use netsim::SackBlock;

/// Number of SACKed segments above a hole required to declare it lost.
pub const DUP_THRESH: u64 = 3;

/// Delivery state of one outstanding segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegState {
    /// Sent once, no feedback yet.
    InFlight,
    /// Covered by a SACK block.
    Sacked,
    /// Declared lost; retransmission pending.
    Lost,
    /// Retransmitted; outcome pending.
    Retx,
}

/// The send-window scoreboard.
///
/// Beyond the per-segment state map, a `not_sacked` index keeps every
/// non-SACKed outstanding sequence number; SACK-block processing and the
/// FACK sweep walk only that index, so repeatedly receiving the same wide
/// SACK blocks (one per ACK) costs O(log n), not O(block width).
#[derive(Debug, Default)]
pub struct Scoreboard {
    segs: BTreeMap<u64, SegState>,
    /// InFlight/Lost/Retx sequence numbers (everything except Sacked).
    not_sacked: BTreeSet<u64>,
    lost: BTreeSet<u64>,
    in_flight: usize,
    sacked: usize,
    highest_sacked: Option<u64>,
    /// FACK sweep watermark: holes below this were already examined.
    fack_mark: u64,
    /// Mutation counter driving the periodic full audit rescan.
    #[cfg(feature = "audit")]
    ops: u64,
}

impl Scoreboard {
    /// Empty scoreboard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Segments currently consuming network capacity
    /// (`InFlight` + `Retx`).
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Segments declared lost and not yet retransmitted.
    pub fn lost_count(&self) -> usize {
        self.lost.len()
    }

    /// Segments currently SACKed.
    pub fn sacked_count(&self) -> usize {
        self.sacked
    }

    /// Total tracked (sent, unacknowledged) segments.
    pub fn len(&self) -> usize {
        self.segs.len()
    }

    /// True if nothing is outstanding.
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// Record the (first) transmission of `seq`.
    pub fn on_send_new(&mut self, seq: u64) {
        let prev = self.segs.insert(seq, SegState::InFlight);
        debug_assert!(prev.is_none(), "segment {seq} sent twice as new");
        self.not_sacked.insert(seq);
        self.in_flight += 1;
        self.audit();
    }

    /// Record the retransmission of a lost segment.
    pub fn on_retransmit(&mut self, seq: u64) {
        let st = self.segs.get_mut(&seq).expect("retransmit of unknown seq");
        debug_assert_eq!(*st, SegState::Lost, "retransmit of non-lost seq {seq}");
        *st = SegState::Retx;
        self.lost.remove(&seq);
        self.in_flight += 1;
        self.audit();
    }

    /// Cumulative ACK up to (exclusive) `cum`: forget all covered segments.
    /// Returns the number of segments newly removed.
    pub fn ack_to(&mut self, cum: u64) -> u64 {
        let mut removed = 0;
        while let Some((&seq, &st)) = self.segs.first_key_value() {
            if seq >= cum {
                break;
            }
            self.segs.remove(&seq);
            self.not_sacked.remove(&seq);
            match st {
                SegState::InFlight | SegState::Retx => self.in_flight -= 1,
                SegState::Sacked => self.sacked -= 1,
                SegState::Lost => {
                    self.lost.remove(&seq);
                }
            }
            removed += 1;
        }
        if self.fack_mark < cum {
            self.fack_mark = cum;
        }
        self.audit();
        removed
    }

    /// Apply one SACK block. Only not-yet-SACKed segments inside the block
    /// are visited, so repeated identical blocks are nearly free.
    pub fn sack(&mut self, block: SackBlock) {
        if block.is_empty() {
            return;
        }
        let hits: Vec<u64> = self
            .not_sacked
            .range(block.start..block.end)
            .copied()
            .collect();
        for seq in hits {
            let st = self.segs.get_mut(&seq).expect("indexed segment exists");
            match *st {
                SegState::InFlight | SegState::Retx => {
                    *st = SegState::Sacked;
                    self.in_flight -= 1;
                    self.sacked += 1;
                }
                SegState::Lost => {
                    *st = SegState::Sacked;
                    self.lost.remove(&seq);
                    self.sacked += 1;
                }
                SegState::Sacked => unreachable!("sacked segment in not_sacked index"),
            }
            self.not_sacked.remove(&seq);
        }
        // Record the highest SACKed sequence actually covered by the
        // window (blocks can reference acked-away data harmlessly).
        if block.end > 0 {
            self.highest_sacked = Some(
                self.highest_sacked
                    .map_or(block.end - 1, |h| h.max(block.end - 1)),
            );
        }
        self.audit();
    }

    /// FACK loss declaration: mark as `Lost` every `InFlight` hole lying
    /// [`DUP_THRESH`] or more below the highest SACKed sequence. Returns
    /// the number of segments newly declared lost.
    pub fn declare_losses(&mut self) -> usize {
        let Some(hs) = self.highest_sacked else {
            return 0;
        };
        let Some(limit) = (hs + 1).checked_sub(DUP_THRESH) else {
            return 0;
        };
        let from = self.fack_mark;
        if from >= limit {
            return 0;
        }
        let mut newly = Vec::new();
        for &seq in self.not_sacked.range(from..limit) {
            if self.segs[&seq] == SegState::InFlight {
                newly.push(seq);
            }
        }
        self.fack_mark = limit;
        let n = newly.len();
        for seq in newly {
            *self.segs.get_mut(&seq).expect("indexed") = SegState::Lost;
            self.lost.insert(seq);
            self.in_flight -= 1;
        }
        self.audit();
        n
    }

    /// Declare every non-SACKed outstanding segment lost (RTO recovery).
    /// Returns how many were newly marked.
    pub fn mark_all_lost(&mut self) -> usize {
        let mut newly = Vec::new();
        for &seq in &self.not_sacked {
            if matches!(self.segs[&seq], SegState::InFlight | SegState::Retx) {
                newly.push(seq);
            }
        }
        let n = newly.len();
        for seq in newly {
            *self.segs.get_mut(&seq).expect("indexed") = SegState::Lost;
            self.lost.insert(seq);
            self.in_flight -= 1;
        }
        self.audit();
        n
    }

    /// Differential check of the incremental bookkeeping against the state
    /// map it summarizes: O(1) conservation identity on every mutation,
    /// full linear rescan (the naive implementation the counters replace)
    /// every 64th.
    #[cfg(feature = "audit")]
    fn audit(&mut self) {
        if !audit::enabled() {
            return;
        }
        self.ops += 1;
        audit::count_tcp_checks(1);
        if self.in_flight + self.sacked + self.lost.len() != self.segs.len() {
            audit::violation(
                "scoreboard",
                format_args!(
                    "conservation broken: in_flight={} + sacked={} + lost={} != len={}",
                    self.in_flight,
                    self.sacked,
                    self.lost.len(),
                    self.segs.len(),
                ),
            );
        }
        if !self.ops.is_multiple_of(64) {
            return;
        }
        let (mut in_flight, mut sacked, mut lost) = (0usize, 0usize, 0usize);
        for (&seq, &st) in &self.segs {
            match st {
                SegState::InFlight | SegState::Retx => in_flight += 1,
                SegState::Sacked => sacked += 1,
                SegState::Lost => lost += 1,
            }
            if (st == SegState::Sacked) == self.not_sacked.contains(&seq) {
                audit::violation(
                    "scoreboard",
                    format_args!("not_sacked index wrong for seq {seq} in state {st:?}"),
                );
            }
            if (st == SegState::Lost) != self.lost.contains(&seq) {
                audit::violation(
                    "scoreboard",
                    format_args!("lost index wrong for seq {seq} in state {st:?}"),
                );
            }
        }
        if in_flight != self.in_flight
            || sacked != self.sacked
            || lost != self.lost.len()
            || self.not_sacked.len() + self.sacked != self.segs.len()
        {
            audit::violation(
                "scoreboard",
                format_args!(
                    "counters diverged from linear rescan: in_flight={} rescan={in_flight}, \
                     sacked={} rescan={sacked}, lost={} rescan={lost}, not_sacked={}, len={}",
                    self.in_flight,
                    self.sacked,
                    self.lost.len(),
                    self.not_sacked.len(),
                    self.segs.len(),
                ),
            );
        }
    }

    #[cfg(not(feature = "audit"))]
    #[inline(always)]
    fn audit(&mut self) {}

    /// Lowest lost segment awaiting retransmission.
    pub fn first_lost(&self) -> Option<u64> {
        self.lost.first().copied()
    }

    /// Highest SACKed sequence, if any.
    pub fn highest_sacked(&self) -> Option<u64> {
        self.highest_sacked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(start: u64, end: u64) -> SackBlock {
        SackBlock { start, end }
    }

    #[test]
    fn send_and_ack_cycle() {
        let mut sb = Scoreboard::new();
        for s in 0..5 {
            sb.on_send_new(s);
        }
        assert_eq!(sb.in_flight(), 5);
        assert_eq!(sb.ack_to(3), 3);
        assert_eq!(sb.in_flight(), 2);
        assert_eq!(sb.len(), 2);
        assert_eq!(sb.ack_to(3), 0); // idempotent
    }

    #[test]
    fn sack_reduces_in_flight() {
        let mut sb = Scoreboard::new();
        for s in 0..10 {
            sb.on_send_new(s);
        }
        sb.sack(blk(5, 8));
        assert_eq!(sb.in_flight(), 7);
        assert_eq!(sb.sacked_count(), 3);
        assert_eq!(sb.highest_sacked(), Some(7));
        // Overlapping SACK is idempotent.
        sb.sack(blk(5, 8));
        assert_eq!(sb.sacked_count(), 3);
    }

    #[test]
    fn fack_declares_hole_lost_after_three_sacks_above() {
        let mut sb = Scoreboard::new();
        for s in 0..10 {
            sb.on_send_new(s);
        }
        // Segment 0 lost in the network; 1 and 2 sacked: only 2 above.
        sb.sack(blk(1, 3));
        assert_eq!(sb.declare_losses(), 0);
        // Third sack above → hole at 0 is lost.
        sb.sack(blk(3, 4));
        assert_eq!(sb.declare_losses(), 1);
        assert_eq!(sb.first_lost(), Some(0));
        assert_eq!(sb.in_flight(), 6); // 10 − 3 sacked − 1 lost
    }

    #[test]
    fn fack_sweep_is_incremental() {
        let mut sb = Scoreboard::new();
        for s in 0..100 {
            sb.on_send_new(s);
        }
        sb.sack(blk(50, 60));
        // highest_sacked = 59 → limit = 57; InFlight holes 0..50 marked.
        assert_eq!(sb.declare_losses(), 50);
        assert_eq!(sb.lost_count(), 50);
        // Re-running without new SACK information marks nothing more.
        assert_eq!(sb.declare_losses(), 0);
        // New SACK above extends the limit to 93: holes 60..93 marked.
        sb.sack(blk(95, 96));
        assert_eq!(sb.declare_losses(), 33);
    }

    #[test]
    fn retransmit_then_ack() {
        let mut sb = Scoreboard::new();
        for s in 0..5 {
            sb.on_send_new(s);
        }
        sb.sack(blk(1, 5));
        sb.declare_losses();
        assert_eq!(sb.first_lost(), Some(0));
        sb.on_retransmit(0);
        assert_eq!(sb.first_lost(), None);
        assert_eq!(sb.in_flight(), 1); // only the retransmission
        assert_eq!(sb.ack_to(5), 5);
        assert!(sb.is_empty());
        assert_eq!(sb.in_flight(), 0);
    }

    #[test]
    fn late_sack_of_lost_segment_cancels_loss() {
        let mut sb = Scoreboard::new();
        for s in 0..6 {
            sb.on_send_new(s);
        }
        sb.sack(blk(1, 5));
        sb.declare_losses();
        assert_eq!(sb.lost_count(), 1);
        // The "lost" segment turns out to have arrived late.
        sb.sack(blk(0, 1));
        assert_eq!(sb.lost_count(), 0);
        assert_eq!(sb.first_lost(), None);
    }

    #[test]
    fn mark_all_lost_on_rto() {
        let mut sb = Scoreboard::new();
        for s in 0..8 {
            sb.on_send_new(s);
        }
        sb.sack(blk(4, 6));
        assert_eq!(sb.mark_all_lost(), 6);
        assert_eq!(sb.in_flight(), 0);
        assert_eq!(sb.lost_count(), 6);
        assert_eq!(sb.sacked_count(), 2); // SACK info retained
        assert_eq!(sb.first_lost(), Some(0));
    }

    #[test]
    fn conservation_invariant() {
        let mut sb = Scoreboard::new();
        for s in 0..50 {
            sb.on_send_new(s);
        }
        sb.sack(blk(10, 20));
        sb.sack(blk(30, 35));
        sb.declare_losses();
        assert_eq!(
            sb.in_flight() + sb.sacked_count() + sb.lost_count(),
            sb.len()
        );
    }
}
