//! CUBIC congestion control (RFC 9438) with HyStart++-style hybrid slow
//! start (RFC 9406) and proportional-rate reduction (RFC 6937) during
//! fast recovery — the modern loss-based baseline PERT competes against.
//!
//! Structure follows quiche's `recovery/congestion` split: the cubic
//! window function itself, a hybrid-slow-start probe that watches for
//! delay increases and compressed ACK trains, and PRR to pace the window
//! down during recovery instead of halving instantly. The window
//! arithmetic is cross-checked each ACK against the straight-line
//! [`CubicReference`] transcription under `--audit`.

use pert_core::audit;
use pert_core::reference::CubicReference;
#[cfg(feature = "telemetry")]
use pert_core::telemetry;

use crate::cc::{CcAction, CcAlgorithm, CcContext};

/// RFC 9438 cubic scaling constant `C`.
const CUBIC_C: f64 = 0.4;
/// RFC 9438 multiplicative-decrease factor `β`.
const CUBIC_BETA: f64 = 0.7;

/// HyStart++ needs this many RTT samples in a round before the delay
/// test may fire (RFC 9406 `N_RTT_SAMPLE`).
const HYSTART_MIN_SAMPLES: u32 = 8;
/// Delay-increase exit threshold `η = clamp(last_min/8, 4 ms, 16 ms)`.
const HYSTART_ETA_MIN: f64 = 0.004;
const HYSTART_ETA_MAX: f64 = 0.016;
/// ACKs closer together than this extend the current ACK train.
const HYSTART_ACK_SPACING: f64 = 0.002;

/// Hybrid-slow-start probe: time-based rounds of one smoothed RTT each;
/// exit slow start when either the per-round minimum RTT rises by `η`
/// over the previous round, or a compressed ACK train spans half the
/// previous round's minimum RTT (the original HyStart train heuristic).
#[derive(Clone, Copy, Debug)]
struct Hystart {
    /// Armed while the flow has not yet exited via HyStart (re-armed on
    /// congestion so a post-RTO slow start gets a fresh probe).
    armed: bool,
    round_end: f64,
    last_round_min: Option<f64>,
    cur_round_min: f64,
    cur_samples: u32,
    last_ack_at: f64,
    train_len: f64,
}

impl Hystart {
    fn new() -> Self {
        Hystart {
            armed: true,
            round_end: 0.0,
            last_round_min: None,
            cur_round_min: f64::INFINITY,
            cur_samples: 0,
            last_ack_at: f64::NEG_INFINITY,
            train_len: 0.0,
        }
    }

    fn rearm(&mut self) {
        *self = Hystart::new();
    }

    /// Fold in one slow-start ACK; returns true when slow start should
    /// end now.
    fn on_ack(&mut self, now: f64, rtt: f64) -> bool {
        if !self.armed {
            return false;
        }
        if now >= self.round_end {
            if self.cur_samples > 0 {
                self.last_round_min = Some(self.cur_round_min);
            }
            self.cur_round_min = f64::INFINITY;
            self.cur_samples = 0;
            self.train_len = 0.0;
            self.round_end = now + rtt;
        }
        self.cur_round_min = self.cur_round_min.min(rtt);
        self.cur_samples += 1;
        let gap = now - self.last_ack_at;
        if gap < HYSTART_ACK_SPACING {
            self.train_len += gap;
        } else {
            self.train_len = 0.0;
        }
        self.last_ack_at = now;

        let Some(last_min) = self.last_round_min else {
            return false;
        };
        let eta = (last_min / 8.0).clamp(HYSTART_ETA_MIN, HYSTART_ETA_MAX);
        let delay_exit =
            self.cur_samples >= HYSTART_MIN_SAMPLES && self.cur_round_min >= last_min + eta;
        let train_exit = self.train_len >= last_min / 2.0;
        if delay_exit || train_exit {
            self.armed = false;
            return true;
        }
        false
    }
}

/// Proportional-rate reduction bookkeeping (RFC 6937). Activated on fast
/// recovery entry, never after an RTO (post-RTO recovery is plain slow
/// start from one segment).
#[derive(Clone, Copy, Debug, Default)]
struct Prr {
    active: bool,
    /// Segments delivered to the receiver since recovery began.
    delivered: u64,
    /// Segments our arithmetic has authorized for transmission.
    out: u64,
    /// Pipe size when recovery began (`RecoverFS`).
    recover_fs: f64,
}

/// CUBIC with hybrid slow start and PRR.
pub struct Cubic {
    /// Window plateau `W_max` (0 until the first congestion event caps
    /// it; a first epoch entered by HyStart uses the current window).
    w_max: f64,
    /// Congestion-avoidance epoch: `Some(start_time)` once entered.
    epoch_start: Option<f64>,
    /// Cached time-to-origin for the current epoch.
    k: f64,
    /// Window at epoch start (the curve's `t = 0` value).
    cwnd_epoch: f64,
    /// Reno-friendly estimate `W_est` for the AIMD region.
    w_est: f64,
    hystart: Hystart,
    prr: Prr,
    hystart_exits: u64,
    /// Straight-line oracle, attached when auditing.
    shadow: Option<CubicReference>,
    #[cfg(feature = "telemetry")]
    tap_w_max: Option<telemetry::Tap>,
    #[cfg(feature = "telemetry")]
    tap_hystart: Option<telemetry::Tap>,
}

impl Cubic {
    /// A fresh CUBIC flow. `seed` keys this flow's telemetry series.
    pub fn new(seed: u64) -> Self {
        let _ = seed;
        Cubic {
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
            cwnd_epoch: 0.0,
            w_est: 0.0,
            hystart: Hystart::new(),
            prr: Prr::default(),
            hystart_exits: 0,
            shadow: audit::enabled().then(|| CubicReference::new(CUBIC_C, CUBIC_BETA)),
            #[cfg(feature = "telemetry")]
            tap_w_max: telemetry::Tap::attach("cubic/w_max", seed),
            #[cfg(feature = "telemetry")]
            tap_hystart: telemetry::Tap::attach("cubic/hystart_exit", seed),
        }
    }

    /// Times HyStart ended slow start (for tests/experiments).
    pub fn hystart_exits(&self) -> u64 {
        self.hystart_exits
    }

    /// Current plateau (for tests).
    pub fn w_max(&self) -> f64 {
        self.w_max
    }

    /// RFC 9438 §4.3 AIMD-friendly additive factor.
    fn aimd_alpha() -> f64 {
        3.0 * (1.0 - CUBIC_BETA) / (1.0 + CUBIC_BETA)
    }

    fn begin_epoch(&mut self, now: f64, cwnd: f64) {
        if self.w_max < cwnd {
            // Entering avoidance above any recorded plateau (first epoch,
            // or growth beyond the last loss point): the curve restarts
            // flat at the current window.
            self.w_max = cwnd;
        }
        self.k = ((self.w_max - cwnd).max(0.0) / CUBIC_C).cbrt();
        self.epoch_start = Some(now);
        self.cwnd_epoch = cwnd;
        self.w_est = cwnd;
    }

    /// The cubic window at `t` seconds into the current epoch.
    fn w_cubic(&self, t: f64) -> f64 {
        CUBIC_C * (t - self.k) * (t - self.k) * (t - self.k) + self.w_max
    }

    fn audit_epoch(&self, t: f64) {
        if let Some(shadow) = &self.shadow {
            audit::count_oracle_checks(2);
            let k_ref = shadow.k(self.w_max, self.cwnd_epoch);
            if !audit::close(self.k, k_ref) {
                audit::violation(
                    "cubic",
                    format_args!("cached K {} != reference K {}", self.k, k_ref),
                );
            }
            let w_ref = shadow.w_cubic(t, self.w_max, self.cwnd_epoch);
            if !audit::close(self.w_cubic(t), w_ref) {
                audit::violation(
                    "cubic",
                    format_args!("W_cubic({t}) {} != reference {}", self.w_cubic(t), w_ref),
                );
            }
        }
    }
}

impl CcAlgorithm for Cubic {
    fn name(&self) -> &'static str {
        "cubic"
    }

    fn on_ack(&mut self, ctx: &mut CcContext<'_>) -> CcAction {
        if *ctx.cwnd < *ctx.ssthresh {
            // Hybrid slow start: exponential growth, watched by HyStart.
            if self.hystart.on_ack(ctx.now, ctx.rtt) {
                self.hystart_exits += 1;
                #[cfg(feature = "telemetry")]
                if let Some(tap) = &self.tap_hystart {
                    tap.record(ctx.now, *ctx.cwnd);
                }
                *ctx.ssthresh = (*ctx.cwnd).max(2.0);
                self.begin_epoch(ctx.now, *ctx.cwnd);
                return CcAction::None;
            }
            ctx.reno_increase();
            if *ctx.cwnd >= *ctx.ssthresh {
                // The crossover-split growth just reached the threshold.
                self.begin_epoch(ctx.now, *ctx.cwnd);
            }
            return CcAction::None;
        }

        // Congestion avoidance on the cubic curve.
        if self.epoch_start.is_none() {
            self.begin_epoch(ctx.now, *ctx.cwnd);
        }
        let start = self.epoch_start.expect("epoch begun above");
        let t = ctx.now - start;
        self.audit_epoch(t);
        let cwnd = *ctx.cwnd;
        // RFC 9438 §4.2: aim one RTT ahead on the curve, clamped so the
        // window never shrinks here and never grows more than 50%/RTT.
        let target = self.w_cubic(t + ctx.rtt).clamp(cwnd, 1.5 * cwnd);
        if cwnd > 0.0 {
            *ctx.cwnd += ctx.newly_acked as f64 * (target - cwnd) / cwnd;
            // §4.3 AIMD-friendly region: never slower than a Reno flow
            // with CUBIC's β would be.
            self.w_est += Self::aimd_alpha() * ctx.newly_acked as f64 / cwnd;
            if self.w_est > *ctx.cwnd {
                *ctx.cwnd = self.w_est;
            }
        }
        CcAction::None
    }

    fn on_congestion_event(&mut self, now: f64, cwnd_at_event: f64, _in_flight: u64) {
        // RFC 9438 §4.6 fast convergence: release bandwidth early when
        // losing below the previous plateau.
        let new_w_max = if cwnd_at_event < self.w_max {
            cwnd_at_event * (1.0 + CUBIC_BETA) / 2.0
        } else {
            cwnd_at_event
        };
        if let Some(shadow) = &self.shadow {
            audit::count_oracle_checks(1);
            let w_ref = shadow.w_max_after_loss(cwnd_at_event, self.w_max);
            if !audit::close(new_w_max, w_ref) {
                audit::violation(
                    "cubic",
                    format_args!("W_max after loss {new_w_max} != reference {w_ref}"),
                );
            }
        }
        self.w_max = new_w_max;
        self.epoch_start = None;
        self.prr.active = false;
        // A post-RTO slow start deserves a fresh HyStart probe.
        self.hystart.rearm();
        #[cfg(feature = "telemetry")]
        if let Some(tap) = &self.tap_w_max {
            tap.record(now, self.w_max);
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = now;
    }

    fn governs_recovery(&self) -> bool {
        true
    }

    fn on_recovery_start(&mut self, _now: f64, in_flight: u64) {
        self.prr = Prr {
            active: true,
            delivered: 0,
            out: 0,
            recover_fs: (in_flight.max(1)) as f64,
        };
    }

    fn on_recovery_ack(&mut self, ctx: &mut CcContext<'_>) {
        if !self.prr.active {
            // Post-RTO recovery: plain slow start from one segment.
            if *ctx.cwnd < *ctx.ssthresh {
                *ctx.cwnd += ctx.newly_acked as f64;
            }
            return;
        }
        // RFC 6937: reduce at the rate data leaves the network, not in
        // one step. The sender transmits everything the window permits
        // immediately after this hook, so segments authorized here are
        // counted as out.
        self.prr.delivered += ctx.newly_acked;
        let pipe = ctx.in_flight as f64;
        let ssthresh = *ctx.ssthresh;
        let sndcnt = if pipe > ssthresh {
            ((self.prr.delivered as f64 * ssthresh / self.prr.recover_fs).ceil()
                - self.prr.out as f64)
                .max(0.0)
        } else {
            // PRR-SSRB: slow-start back toward ssthresh once the pipe has
            // drained below it.
            let limit =
                (self.prr.delivered as f64 - self.prr.out as f64).max(ctx.newly_acked as f64) + 1.0;
            (ssthresh - pipe).min(limit).max(0.0)
        };
        self.prr.out += sndcnt as u64;
        *ctx.cwnd = (pipe + sndcnt).max(1.0);
    }

    fn on_recovery_exit(&mut self, ctx: &mut CcContext<'_>) {
        if self.prr.active {
            // RFC 6937: on exit the window lands exactly at ssthresh.
            *ctx.cwnd = *ctx.ssthresh;
            self.prr.active = false;
        }
    }

    /// `β = 0.7`: ssthresh falls to 70% on loss, not 50%.
    fn loss_reduction(&self) -> f64 {
        1.0 - CUBIC_BETA
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(cc: &mut Cubic, now: f64, rtt: f64, newly: u64, cwnd: &mut f64, ssthresh: &mut f64) {
        let mut ctx = CcContext {
            now,
            rtt,
            owd: rtt / 2.0,
            newly_acked: newly,
            in_flight: 0,
            cwnd,
            ssthresh,
        };
        cc.on_ack(&mut ctx);
    }

    #[test]
    fn cubic_grows_toward_w_max_plateau() {
        let mut cc = Cubic::new(1);
        let mut cwnd = 50.0;
        let mut ssthresh = 10.0; // congestion avoidance
        cc.on_congestion_event(0.0, 100.0, 0); // plateau at 100
        assert_eq!(cc.w_max(), 100.0);
        let mut now = 0.0;
        for _ in 0..4000 {
            now += 0.01;
            ack(&mut cc, now, 0.05, 1, &mut cwnd, &mut ssthresh);
        }
        // The curve approaches (and may slightly probe past) the plateau.
        assert!(cwnd > 90.0, "cwnd = {cwnd}");
    }

    #[test]
    fn fast_convergence_lowers_plateau() {
        let mut cc = Cubic::new(2);
        cc.on_congestion_event(0.0, 100.0, 0);
        // Losing again below the plateau shrinks it below the event window.
        cc.on_congestion_event(1.0, 80.0, 0);
        assert!((cc.w_max() - 80.0 * 0.85).abs() < 1e-12);
        // Losing above it plateaus at the event window.
        cc.on_congestion_event(2.0, 200.0, 0);
        assert_eq!(cc.w_max(), 200.0);
    }

    #[test]
    fn hystart_delay_increase_ends_slow_start() {
        let mut cc = Cubic::new(3);
        let mut cwnd = 2.0;
        let mut ssthresh = f64::MAX;
        let mut now = 0.0;
        // Round 1: flat 50 ms RTTs establish the baseline.
        for _ in 0..20 {
            now += 0.01;
            ack(&mut cc, now, 0.05, 1, &mut cwnd, &mut ssthresh);
        }
        // Subsequent rounds: RTT inflated well past η — HyStart must cap
        // ssthresh at the current window and hand over to avoidance.
        for _ in 0..200 {
            now += 0.01;
            ack(&mut cc, now, 0.12, 1, &mut cwnd, &mut ssthresh);
            if cc.hystart_exits() > 0 {
                break;
            }
        }
        assert_eq!(cc.hystart_exits(), 1);
        assert!(ssthresh.is_finite());
        assert!((ssthresh - cwnd).abs() < 1e-9 || cwnd >= ssthresh);
    }

    #[test]
    fn prr_reduces_proportionally_not_instantly() {
        let mut cc = Cubic::new(4);
        let mut cwnd = 100.0;
        let mut ssthresh = 70.0; // β·100 after the sender's cut
        cc.on_congestion_event(0.0, 100.0, 90);
        cc.on_recovery_start(0.0, 90);
        // First recovery ACK: pipe 89 > ssthresh 70 → sndcnt =
        // ceil(1·70/90) − 0 = 1; window becomes pipe + 1 = 90, far above
        // an instant cut to 70.
        let mut ctx = CcContext {
            now: 0.01,
            rtt: 0.05,
            owd: 0.025,
            newly_acked: 1,
            in_flight: 89,
            cwnd: &mut cwnd,
            ssthresh: &mut ssthresh,
        };
        cc.on_recovery_ack(&mut ctx);
        assert_eq!(cwnd, 90.0);
        // Drained pipe below ssthresh → SSRB builds back toward ssthresh.
        let mut ctx = CcContext {
            now: 0.02,
            rtt: 0.05,
            owd: 0.025,
            newly_acked: 30,
            in_flight: 40,
            cwnd: &mut cwnd,
            ssthresh: &mut ssthresh,
        };
        cc.on_recovery_ack(&mut ctx);
        assert!(cwnd > 40.0 && cwnd <= 71.0, "cwnd = {cwnd}");
        // Exit pins the window at ssthresh exactly.
        let mut ctx = CcContext {
            now: 0.03,
            rtt: 0.05,
            owd: 0.025,
            newly_acked: 1,
            in_flight: 60,
            cwnd: &mut cwnd,
            ssthresh: &mut ssthresh,
        };
        cc.on_recovery_exit(&mut ctx);
        assert_eq!(cwnd, 70.0);
    }
}
