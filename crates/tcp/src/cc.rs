//! Congestion-control algorithms pluggable into [`crate::TcpSender`].
//!
//! The sender owns the mechanical parts of TCP (SACK scoreboard, loss
//! recovery, RTO); a [`CcAlgorithm`] decides how the window grows on ACKs
//! and whether to take *early* (delay-triggered) reductions:
//!
//! * [`Reno`] — AIMD with slow start; the window-growth core of the
//!   paper's SACK baseline,
//! * [`Vegas`] — Brakmo & Peterson's delay-based additive adjustment,
//! * [`PertCc`] — PERT: Reno growth plus the probabilistic early response
//!   of [`pert_core::PertController`],
//! * [`PertPiCc`] — PERT/PI: Reno growth plus the PI-emulating controller
//!   of [`pert_core::PertPiController`],
//! * [`PertRemCc`] — PERT/REM: Reno growth plus the REM-emulating
//!   controller of [`pert_core::PertRemController`] (the paper's §8
//!   "other AQM schemes" generalization).

use pert_core::pert::{PertController, PertParams};
use pert_core::pi::{PertPiController, PertPiParams};
use pert_core::rem::{PertRemController, PertRemParams};

/// Per-ACK information handed to the congestion-control algorithm.
#[derive(Debug)]
pub struct CcContext<'a> {
    /// Current time, seconds.
    pub now: f64,
    /// RTT sample from this ACK, seconds.
    pub rtt: f64,
    /// Forward one-way delay sample echoed by the receiver, seconds.
    pub owd: f64,
    /// Segments newly acknowledged by this ACK (0 on a pure duplicate).
    pub newly_acked: u64,
    /// Segments currently in flight (RFC 6675 pipe: sent, not yet
    /// cumulatively acked, SACKed, or declared lost), *after* this ACK's
    /// scoreboard bookkeeping.
    pub in_flight: u64,
    /// Congestion window, segments (mutable — algorithms grow it here).
    pub cwnd: &'a mut f64,
    /// Slow-start threshold, segments.
    pub ssthresh: &'a mut f64,
}

impl CcContext<'_> {
    /// Standard Reno growth: slow start below `ssthresh`, else 1/cwnd per
    /// acked segment.
    ///
    /// RFC 5681 §3.1: a stretch ACK that carries `cwnd` across `ssthresh`
    /// is split at the crossover — only the segments below the threshold
    /// get exponential credit; the remainder grows linearly. (The old
    /// code applied full slow-start growth to the entire ACK, letting one
    /// cumulative ACK overshoot `ssthresh` by up to `newly_acked − 1`
    /// segments.)
    pub fn reno_increase(&mut self) {
        let mut remaining = self.newly_acked as f64;
        if *self.cwnd < *self.ssthresh {
            let room = *self.ssthresh - *self.cwnd;
            let exp = remaining.min(room);
            *self.cwnd += exp;
            remaining -= exp;
        }
        if remaining > 0.0 && *self.cwnd > 0.0 {
            *self.cwnd += remaining / *self.cwnd;
        }
    }
}

/// What the algorithm wants beyond its own `cwnd` edits.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CcAction {
    /// Nothing extra.
    None,
    /// Take an early (delay-triggered) multiplicative decrease:
    /// `cwnd ← (1 − factor)·cwnd`, without entering loss recovery.
    EarlyReduce {
        /// The decrease factor in (0, 1).
        factor: f64,
    },
}

/// A congestion-control algorithm.
pub trait CcAlgorithm: Send {
    /// Short name for reports ("sack", "vegas", "pert", "pert-pi").
    fn name(&self) -> &'static str;

    /// Process an ACK (called outside loss recovery only).
    fn on_ack(&mut self, ctx: &mut CcContext<'_>) -> CcAction;

    /// The sender performed a loss/ECN-triggered reduction at `now`
    /// (lets delay-based schemes suppress early responses for an RTT).
    fn on_congestion(&mut self, _now: f64) {}

    /// Richer congestion notification: the window at the moment of the
    /// event and the current pipe. Schemes that track `w_max`
    /// (CUBIC) or run their own recovery arithmetic override this; the
    /// default forwards to [`CcAlgorithm::on_congestion`] so legacy
    /// schemes are unaffected.
    fn on_congestion_event(&mut self, now: f64, _cwnd_at_event: f64, _in_flight: u64) {
        self.on_congestion(now);
    }

    /// When true, the sender leaves `cwnd` alone on recovery entry and
    /// lets the algorithm drive the in-recovery window through
    /// [`CcAlgorithm::on_recovery_start`] / [`CcAlgorithm::on_recovery_ack`]
    /// (e.g. CUBIC's proportional-rate reduction, BBR's inflight cap).
    /// `ssthresh` is still set to `(1 − loss_reduction)·cwnd` by the
    /// sender before these hooks run.
    fn governs_recovery(&self) -> bool {
        false
    }

    /// The sender just entered loss recovery (fast retransmit, not RTO).
    /// `in_flight` is the pipe after the triggering ACK's scoreboard
    /// bookkeeping.
    fn on_recovery_start(&mut self, _now: f64, _in_flight: u64) {}

    /// An ACK arrived while the sender is in loss recovery. The default
    /// reproduces the sender's historical hardwired rule: keep slow-start
    /// growth if still below `ssthresh`, otherwise hold the window.
    fn on_recovery_ack(&mut self, ctx: &mut CcContext<'_>) {
        if *ctx.cwnd < *ctx.ssthresh {
            *ctx.cwnd += ctx.newly_acked as f64;
        }
    }

    /// The cumulative ACK crossed the recovery point: recovery is over.
    fn on_recovery_exit(&mut self, _ctx: &mut CcContext<'_>) {}

    /// Pacing rate in segments/second, if this scheme paces (BBR). `None`
    /// (the default) keeps the sender's pure window-driven send loop.
    fn pacing_rate(&self) -> Option<f64> {
        None
    }

    /// An RTT (and one-way-delay) sample observed while the sender is in
    /// loss recovery (when [`CcAlgorithm::on_ack`] is not called).
    /// Delay-based schemes keep their filters fresh here; loss-based
    /// schemes ignore it.
    fn on_rtt_sample(&mut self, _now: f64, _rtt: f64, _owd: f64) {}

    /// Multiplicative decrease factor for loss/ECN events (default: halve).
    fn loss_reduction(&self) -> f64 {
        0.5
    }

    /// Early (delay-triggered) reductions taken so far.
    fn early_reductions(&self) -> u64 {
        0
    }
}

/// Plain Reno/SACK growth: the loss-based baseline.
#[derive(Debug, Default)]
pub struct Reno;

impl Reno {
    /// Create a Reno algorithm.
    pub fn new() -> Self {
        Reno
    }
}

impl CcAlgorithm for Reno {
    fn name(&self) -> &'static str {
        "sack"
    }
    fn on_ack(&mut self, ctx: &mut CcContext<'_>) -> CcAction {
        ctx.reno_increase();
        CcAction::None
    }
}

/// TCP Vegas (Brakmo & Peterson 1994; ns-2's `TCP/Vegas`): once per RTT,
/// estimate the backlog `diff = cwnd·(rtt − base)/rtt` and additively
/// adjust so that `alpha ≤ diff ≤ beta`. Slow start doubles every *other*
/// RTT and ends when `diff > gamma`.
#[derive(Debug)]
pub struct Vegas {
    /// Lower backlog target (segments), default 1.
    pub alpha: f64,
    /// Upper backlog target (segments), default 3.
    pub beta: f64,
    /// Slow-start exit threshold (segments), default 1.
    pub gamma: f64,
    base_rtt: Option<f64>,
    epoch_end: f64,
    grow_this_epoch: bool,
}

impl Vegas {
    /// Vegas with the canonical (α, β, γ) = (1, 3, 1).
    pub fn new() -> Self {
        Vegas {
            alpha: 1.0,
            beta: 3.0,
            gamma: 1.0,
            base_rtt: None,
            epoch_end: 0.0,
            grow_this_epoch: true,
        }
    }

    /// Backlog estimate for the given window and RTTs.
    fn diff(cwnd: f64, rtt: f64, base: f64) -> f64 {
        cwnd * (rtt - base) / rtt.max(1e-9)
    }
}

impl Default for Vegas {
    fn default() -> Self {
        Self::new()
    }
}

impl CcAlgorithm for Vegas {
    fn name(&self) -> &'static str {
        "vegas"
    }

    fn on_ack(&mut self, ctx: &mut CcContext<'_>) -> CcAction {
        let base = match self.base_rtt {
            None => {
                self.base_rtt = Some(ctx.rtt);
                ctx.rtt
            }
            Some(b) => {
                let b = b.min(ctx.rtt);
                self.base_rtt = Some(b);
                b
            }
        };

        let in_slow_start = *ctx.cwnd < *ctx.ssthresh;
        if in_slow_start {
            // Grow by one segment per acked segment, every other RTT.
            if self.grow_this_epoch {
                *ctx.cwnd += ctx.newly_acked as f64;
            }
        }

        if ctx.now >= self.epoch_end {
            self.epoch_end = ctx.now + ctx.rtt;
            let diff = Self::diff(*ctx.cwnd, ctx.rtt, base);
            if in_slow_start {
                self.grow_this_epoch = !self.grow_this_epoch;
                if diff > self.gamma {
                    // Exit slow start: fall back by 1/8 as Vegas does.
                    //
                    // ns-2's `TCP/Vegas` sets `ssthresh_ = 2` here (not
                    // `ssthresh = cwnd`, which our old code did): pinning
                    // ssthresh low keeps the flow in congestion avoidance
                    // even after a later `diff > beta` decrement, instead
                    // of re-entering the doubling-every-other-RTT slow
                    // start. Also re-arm `grow_this_epoch` so a future
                    // legitimate slow start (post-RTO) begins on a growth
                    // epoch.
                    *ctx.cwnd = (*ctx.cwnd * 7.0 / 8.0).max(2.0);
                    *ctx.ssthresh = 2.0;
                    self.grow_this_epoch = true;
                }
            } else if diff < self.alpha {
                *ctx.cwnd += 1.0;
            } else if diff > self.beta {
                *ctx.cwnd = (*ctx.cwnd - 1.0).max(2.0);
            }
        }
        CcAction::None
    }
}

/// Which delay signal drives PERT's congestion prediction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DelaySignal {
    /// Round-trip time (the paper's main design; reacts to congestion in
    /// either direction).
    Rtt,
    /// Forward one-way delay (the §7 variant; blind to reverse-path
    /// congestion). Response suppression still spans one full RTT.
    OneWayDelay,
}

/// PERT: Reno growth plus the paper's probabilistic early response
/// (emulated gentle RED on the `srtt_0.99` queuing-delay estimate).
#[derive(Debug)]
pub struct PertCc {
    ctl: PertController,
    signal: DelaySignal,
}

impl PertCc {
    /// PERT with the paper's default parameters (RTT signal).
    pub fn new(seed: u64) -> Self {
        Self::with_params(PertParams::default(), seed)
    }

    /// PERT with custom parameters (for the ablation experiments).
    pub fn with_params(params: PertParams, seed: u64) -> Self {
        PertCc {
            ctl: PertController::new(params, seed),
            signal: DelaySignal::Rtt,
        }
    }

    /// PERT driven by forward one-way delay (§7's reverse-traffic remedy).
    pub fn with_signal(params: PertParams, signal: DelaySignal, seed: u64) -> Self {
        PertCc {
            ctl: PertController::new(params, seed),
            signal,
        }
    }

    /// The configured signal.
    pub fn signal(&self) -> DelaySignal {
        self.signal
    }

    /// Access the underlying controller (for post-run inspection).
    pub fn controller(&self) -> &PertController {
        &self.ctl
    }
}

impl CcAlgorithm for PertCc {
    fn name(&self) -> &'static str {
        match self.signal {
            DelaySignal::Rtt => "pert",
            DelaySignal::OneWayDelay => "pert-owd",
        }
    }

    fn on_ack(&mut self, ctx: &mut CcContext<'_>) -> CcAction {
        ctx.reno_increase();
        // Tag any response this ACK triggers with the sender's growth
        // regime (`pert/response` telemetry carries it).
        self.ctl.set_regime(if *ctx.cwnd < *ctx.ssthresh {
            pert_core::pert::REGIME_SLOW_START
        } else {
            pert_core::pert::REGIME_CONG_AVOID
        });
        let resp = match self.signal {
            DelaySignal::Rtt => self.ctl.on_ack(ctx.now, ctx.rtt),
            DelaySignal::OneWayDelay => self.ctl.on_ack_with_hold(ctx.now, ctx.owd, ctx.rtt),
        };
        match resp {
            Some(resp) => CcAction::EarlyReduce {
                factor: resp.factor,
            },
            None => CcAction::None,
        }
    }

    fn on_congestion(&mut self, now: f64) {
        self.ctl.on_loss_response(now);
    }

    fn on_rtt_sample(&mut self, _now: f64, rtt: f64, owd: f64) {
        match self.signal {
            DelaySignal::Rtt => self.ctl.observe(rtt),
            DelaySignal::OneWayDelay => self.ctl.observe(owd),
        }
    }

    fn early_reductions(&self) -> u64 {
        self.ctl.stats.early_responses
    }
}

/// PERT/PI: Reno growth plus the §6 PI-emulating controller.
#[derive(Debug)]
pub struct PertPiCc {
    ctl: PertPiController,
}

impl PertPiCc {
    /// Create with explicit PI parameters.
    pub fn new(params: PertPiParams, seed: u64) -> Self {
        PertPiCc {
            ctl: PertPiController::new(params, seed),
        }
    }

    /// Access the underlying controller.
    pub fn controller(&self) -> &PertPiController {
        &self.ctl
    }
}

impl CcAlgorithm for PertPiCc {
    fn name(&self) -> &'static str {
        "pert-pi"
    }

    fn on_ack(&mut self, ctx: &mut CcContext<'_>) -> CcAction {
        ctx.reno_increase();
        match self.ctl.on_ack(ctx.now, ctx.rtt) {
            Some(factor) => CcAction::EarlyReduce { factor },
            None => CcAction::None,
        }
    }

    fn on_rtt_sample(&mut self, _now: f64, rtt: f64, _owd: f64) {
        self.ctl.observe(rtt);
    }

    fn early_reductions(&self) -> u64 {
        self.ctl.early_responses
    }
}

/// PERT/REM: Reno growth plus the REM-emulating controller (price +
/// exponential marking), demonstrating the paper's closing generality
/// claim.
#[derive(Debug)]
pub struct PertRemCc {
    ctl: PertRemController,
}

impl PertRemCc {
    /// Create with explicit REM parameters.
    pub fn new(params: PertRemParams, seed: u64) -> Self {
        PertRemCc {
            ctl: PertRemController::new(params, seed),
        }
    }

    /// Access the underlying controller.
    pub fn controller(&self) -> &PertRemController {
        &self.ctl
    }
}

impl CcAlgorithm for PertRemCc {
    fn name(&self) -> &'static str {
        "pert-rem"
    }

    fn on_ack(&mut self, ctx: &mut CcContext<'_>) -> CcAction {
        ctx.reno_increase();
        match self.ctl.on_ack(ctx.now, ctx.rtt) {
            Some(factor) => CcAction::EarlyReduce { factor },
            None => CcAction::None,
        }
    }

    fn on_rtt_sample(&mut self, _now: f64, rtt: f64, _owd: f64) {
        self.ctl.observe(rtt);
    }

    fn early_reductions(&self) -> u64 {
        self.ctl.early_responses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reno_slow_start_doubles_per_rtt() {
        let mut cc = Reno::new();
        let mut cwnd = 2.0;
        let mut ssthresh = 64.0;
        // One RTT worth of ACKs: 2 ACKs each acking 1 segment.
        for _ in 0..2 {
            let mut ctx = CcContext {
                now: 0.0,
                rtt: 0.1,
                owd: 0.05,
                newly_acked: 1,
                in_flight: 0,
                cwnd: &mut cwnd,
                ssthresh: &mut ssthresh,
            };
            cc.on_ack(&mut ctx);
        }
        assert_eq!(cwnd, 4.0);
    }

    #[test]
    fn reno_congestion_avoidance_grows_one_per_rtt() {
        let mut cc = Reno::new();
        let mut cwnd = 10.0;
        let mut ssthresh = 5.0;
        for _ in 0..10 {
            let mut ctx = CcContext {
                now: 0.0,
                rtt: 0.1,
                owd: 0.05,
                newly_acked: 1,
                in_flight: 0,
                cwnd: &mut cwnd,
                ssthresh: &mut ssthresh,
            };
            cc.on_ack(&mut ctx);
        }
        // 10 acks at cwnd≈10: ~+1 segment.
        assert!((cwnd - 11.0).abs() < 0.05, "cwnd = {cwnd}");
    }

    #[test]
    fn vegas_increases_when_below_alpha() {
        let mut cc = Vegas::new();
        let mut cwnd = 10.0;
        let mut ssthresh = 5.0; // already in CA
                                // First ack sets base = 0.1.
        let mut ctx = CcContext {
            now: 0.0,
            rtt: 0.1,
            owd: 0.05,
            newly_acked: 1,
            in_flight: 0,
            cwnd: &mut cwnd,
            ssthresh: &mut ssthresh,
        };
        cc.on_ack(&mut ctx);
        // Next epoch with rtt == base → diff 0 < alpha → +1.
        let before = cwnd;
        let mut ctx = CcContext {
            now: 0.2,
            rtt: 0.1,
            owd: 0.05,
            newly_acked: 1,
            in_flight: 0,
            cwnd: &mut cwnd,
            ssthresh: &mut ssthresh,
        };
        cc.on_ack(&mut ctx);
        assert_eq!(cwnd, before + 1.0);
    }

    #[test]
    fn vegas_decreases_when_above_beta() {
        let mut cc = Vegas::new();
        let mut cwnd = 10.0;
        let mut ssthresh = 5.0;
        let mut ctx = CcContext {
            now: 0.0,
            rtt: 0.1,
            owd: 0.05,
            newly_acked: 1,
            in_flight: 0,
            cwnd: &mut cwnd,
            ssthresh: &mut ssthresh,
        };
        cc.on_ack(&mut ctx);
        // rtt 0.2 with base 0.1: diff = 10·0.5 = 5 > beta → −1.
        let before = cwnd;
        let mut ctx = CcContext {
            now: 0.2,
            rtt: 0.2,
            owd: 0.1,
            newly_acked: 1,
            in_flight: 0,
            cwnd: &mut cwnd,
            ssthresh: &mut ssthresh,
        };
        cc.on_ack(&mut ctx);
        assert_eq!(cwnd, before - 1.0);
    }

    #[test]
    fn vegas_holds_inside_band() {
        let mut cc = Vegas::new();
        let mut cwnd = 10.0;
        let mut ssthresh = 5.0;
        let mut ctx = CcContext {
            now: 0.0,
            rtt: 0.1,
            owd: 0.05,
            newly_acked: 1,
            in_flight: 0,
            cwnd: &mut cwnd,
            ssthresh: &mut ssthresh,
        };
        cc.on_ack(&mut ctx); // first epoch: diff 0 < α → cwnd = 11
                             // diff = 11·(0.12−0.1)/0.12 ≈ 1.83 ∈ (1, 3) → hold.
        let before = cwnd;
        let mut ctx = CcContext {
            now: 0.2,
            rtt: 0.12,
            owd: 0.06,
            newly_acked: 1,
            in_flight: 0,
            cwnd: &mut cwnd,
            ssthresh: &mut ssthresh,
        };
        cc.on_ack(&mut ctx);
        assert_eq!(cwnd, before);
    }

    #[test]
    fn pert_grows_like_reno_and_reduces_early() {
        let mut cc = PertCc::new(11);
        let mut cwnd = 10.0;
        let mut ssthresh = 5.0;
        // Base RTT.
        let mut ctx = CcContext {
            now: 0.0,
            rtt: 0.06,
            owd: 0.03,
            newly_acked: 1,
            in_flight: 0,
            cwnd: &mut cwnd,
            ssthresh: &mut ssthresh,
        };
        assert_eq!(cc.on_ack(&mut ctx), CcAction::None);
        // Sustained large queuing delay: eventually EarlyReduce appears.
        let mut saw_reduce = false;
        let mut now = 0.0;
        for _ in 0..100_000 {
            now += 0.001;
            let mut ctx = CcContext {
                now,
                rtt: 0.2,
                owd: 0.1,
                newly_acked: 1,
                in_flight: 0,
                cwnd: &mut cwnd,
                ssthresh: &mut ssthresh,
            };
            if let CcAction::EarlyReduce { factor } = cc.on_ack(&mut ctx) {
                assert!((factor - 0.35).abs() < 1e-12);
                saw_reduce = true;
                break;
            }
        }
        assert!(saw_reduce);
        assert_eq!(cc.early_reductions(), 1);
    }

    #[test]
    fn stretch_ack_splits_growth_at_ssthresh_crossover() {
        // RFC 5681 §3.1: a stretch ACK for 8 segments with cwnd = 6 and
        // ssthresh = 10 gets 4 segments of exponential credit (up to the
        // threshold) and the remaining 4 as linear growth from the
        // threshold: cwnd = 10 + 4/10, not 14.
        let mut cwnd = 6.0;
        let mut ssthresh = 10.0;
        let mut ctx = CcContext {
            now: 0.0,
            rtt: 0.1,
            owd: 0.05,
            newly_acked: 8,
            in_flight: 0,
            cwnd: &mut cwnd,
            ssthresh: &mut ssthresh,
        };
        ctx.reno_increase();
        assert!((cwnd - 10.4).abs() < 1e-12, "cwnd = {cwnd}");

        // Entirely below the threshold: pure slow start, unchanged.
        let mut cwnd = 2.0;
        let mut ssthresh = 64.0;
        let mut ctx = CcContext {
            now: 0.0,
            rtt: 0.1,
            owd: 0.05,
            newly_acked: 3,
            in_flight: 0,
            cwnd: &mut cwnd,
            ssthresh: &mut ssthresh,
        };
        ctx.reno_increase();
        assert_eq!(cwnd, 5.0);
    }

    #[test]
    fn vegas_slow_start_exit_pins_ssthresh_and_stays_in_ca() {
        let mut cc = Vegas::new();
        let mut cwnd = 32.0;
        let mut ssthresh = 64.0; // slow start
        let mut ctx = CcContext {
            now: 0.0,
            rtt: 0.1,
            owd: 0.05,
            newly_acked: 1,
            in_flight: 0,
            cwnd: &mut cwnd,
            ssthresh: &mut ssthresh,
        };
        cc.on_ack(&mut ctx); // base = 0.1, epoch armed
                             // Next epoch: rtt 0.2 → diff = cwnd·0.5 ≫ γ → exit.
        let mut ctx = CcContext {
            now: 0.2,
            rtt: 0.2,
            owd: 0.1,
            newly_acked: 1,
            in_flight: 0,
            cwnd: &mut cwnd,
            ssthresh: &mut ssthresh,
        };
        cc.on_ack(&mut ctx);
        // ns-2 semantics: cwnd falls back by 1/8, ssthresh pins at 2.
        assert!(cwnd < 32.0, "cwnd should fall back, got {cwnd}");
        assert_eq!(ssthresh, 2.0);
        // Later epochs must behave as congestion avoidance (±1/RTT), never
        // the every-other-RTT doubling the old ssthresh=cwnd code allowed
        // after a beta decrement dropped cwnd back under ssthresh.
        let before = cwnd;
        let mut ctx = CcContext {
            now: 0.5,
            rtt: 0.2,
            owd: 0.1,
            newly_acked: 4,
            in_flight: 0,
            cwnd: &mut cwnd,
            ssthresh: &mut ssthresh,
        };
        cc.on_ack(&mut ctx);
        assert!(
            cwnd >= before - 1.0 - 1e-9 && cwnd <= before + 1.0 + 1e-9,
            "CA adjustment expected, got {before} -> {cwnd}"
        );
        assert_eq!(ssthresh, 2.0);
    }

    #[test]
    fn names_are_distinct() {
        use std::collections::HashSet;
        let names: HashSet<&str> = [
            Reno::new().name(),
            Vegas::new().name(),
            PertCc::new(0).name(),
            PertPiCc::new(
                pert_core::pi::PertPiParams::from_router_pi(1.822e-5, 1.816e-5, 1000.0, 0.003),
                0,
            )
            .name(),
        ]
        .into_iter()
        .collect();
        assert_eq!(names.len(), 4);
    }
}
