//! Property-based tests of the PERT algorithms.

use pert_core::buffer::{bdp_packets, max_decrease_for_buffer, min_buffer_for_decrease};
use pert_core::estimators::{Ewma, MovingAverage};
use pert_core::pert::{PertController, PertParams};
use pert_core::pi::{PertPiController, PertPiParams};
use pert_core::response::ResponseCurve;
use proptest::prelude::*;

proptest! {
    /// The response curve is a total, monotone, continuous map into [0, 1]
    /// for any valid parameterization.
    #[test]
    fn response_curve_is_monotone_unit_valued(
        t_min in 0.001f64..0.05,
        spread in 0.001f64..0.05,
        p_max in 0.001f64..1.0,
        qds in proptest::collection::vec(0.0f64..0.5, 2..100),
    ) {
        let c = ResponseCurve::new(t_min, t_min + spread, p_max);
        let mut sorted = qds.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = -1.0;
        for qd in sorted {
            let p = c.probability(qd);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p >= prev - 1e-12);
            prev = p;
        }
        // Continuity at the three joints.
        for x in [c.t_min, c.t_max, 2.0 * c.t_max] {
            let lo = c.probability(x - 1e-9);
            let hi = c.probability(x + 1e-9);
            prop_assert!((hi - lo).abs() < 1e-5, "jump at {x}: {lo} → {hi}");
        }
    }

    /// EWMA output always lies within the range of its inputs.
    #[test]
    fn ewma_stays_within_input_hull(
        alpha in 0.0f64..0.999,
        xs in proptest::collection::vec(0.001f64..10.0, 1..200),
    ) {
        let mut e = Ewma::new(alpha);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in &xs {
            lo = lo.min(x);
            hi = hi.max(x);
            let v = e.update(x);
            prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
        }
    }

    /// The windowed moving average matches a naive recomputation.
    #[test]
    fn moving_average_matches_naive(
        window in 1usize..50,
        xs in proptest::collection::vec(-100.0f64..100.0, 1..300),
    ) {
        let mut ma = MovingAverage::new(window);
        for (i, &x) in xs.iter().enumerate() {
            let got = ma.update(x);
            let lo = i.saturating_sub(window - 1);
            let naive: f64 =
                xs[lo..=i].iter().sum::<f64>() / (i - lo + 1) as f64;
            prop_assert!((got - naive).abs() < 1e-9);
        }
    }

    /// PERT never responds twice within one smoothed RTT, for arbitrary
    /// RTT traces.
    #[test]
    fn pert_once_per_rtt(
        seed in any::<u64>(),
        rtts in proptest::collection::vec(0.01f64..0.5, 10..500),
    ) {
        let mut c = PertController::new(PertParams::default(), seed);
        let mut now = 0.0;
        let mut last: Option<(f64, f64)> = None;
        for rtt in rtts {
            now += 0.001;
            if c.on_ack(now, rtt).is_some() {
                let srtt = c.srtt().unwrap();
                if let Some((t_prev, srtt_prev)) = last {
                    prop_assert!(now - t_prev >= srtt_prev - 1e-9);
                }
                last = Some((now, srtt));
            }
        }
    }

    /// PERT's queuing-delay estimate is never negative and never exceeds
    /// the spread of the observed samples.
    #[test]
    fn pert_delay_estimate_bounded(
        rtts in proptest::collection::vec(0.01f64..1.0, 2..300),
    ) {
        let mut c = PertController::new(PertParams::default(), 7);
        let mut now = 0.0;
        for &rtt in &rtts {
            now += 0.01;
            let _ = c.on_ack(now, rtt);
            let qd = c.queuing_delay().unwrap();
            let lo = rtts.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = rtts.iter().cloned().fold(0.0, f64::max);
            prop_assert!(qd >= 0.0 && qd <= hi - lo + 1e-9);
        }
    }

    /// PERT/PI's probability stays in [0, 1] for arbitrary traces.
    #[test]
    fn pert_pi_probability_bounded(
        rtts in proptest::collection::vec(0.001f64..2.0, 2..300),
    ) {
        let params = PertPiParams::from_router_pi(1.822e-5, 1.816e-5, 10_000.0, 0.003);
        let mut c = PertPiController::new(params, 3);
        let mut now = 0.0;
        for rtt in rtts {
            now += 0.001;
            let _ = c.on_ack(now, rtt);
            prop_assert!((0.0..=1.0).contains(&c.probability()));
        }
    }

    /// Buffer relation round-trips and is monotone in f.
    #[test]
    fn buffer_relation_roundtrip(f in 0.01f64..0.99, bdp in 0.1f64..10_000.0) {
        let b = min_buffer_for_decrease(f, bdp);
        let f2 = max_decrease_for_buffer(b, bdp);
        prop_assert!((f - f2).abs() < 1e-9);
        let b2 = min_buffer_for_decrease((f + 1.0) / 2.0, bdp);
        prop_assert!(b2 >= b);
    }

    /// BDP in packets is linear in capacity and RTT.
    #[test]
    fn bdp_linearity(c in 1e3f64..1e9, r in 0.001f64..2.0) {
        let one = bdp_packets(c, r, 1000.0);
        prop_assert!((bdp_packets(2.0 * c, r, 1000.0) - 2.0 * one).abs() < one * 1e-9 + 1e-9);
        prop_assert!((bdp_packets(c, 2.0 * r, 1000.0) - 2.0 * one).abs() < one * 1e-9 + 1e-9);
    }
}
