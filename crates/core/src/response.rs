//! PERT's probabilistic response curve (paper §3, Figure 5).
//!
//! The curve maps the smoothed queuing-delay estimate to a per-ACK
//! probability of early window reduction, mirroring "gentle" RED's marking
//! function but expressed over *delay* instead of queue length:
//!
//! ```text
//!          0                                   qd < T_min
//!          p_max·(qd − T_min)/(T_max − T_min)  T_min ≤ qd < T_max
//! p(qd) =  p_max + (1 − p_max)·(qd − T_max)/T_max
//!                                              T_max ≤ qd < 2·T_max
//!          1                                   qd ≥ 2·T_max
//! ```
//!
//! The paper uses fixed thresholds `T_min = 5 ms`, `T_max = 10 ms` above
//! the propagation-delay estimate, and `p_max = 0.05`.

/// The gentle-RED-shaped response curve on queuing delay.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResponseCurve {
    /// Lower queuing-delay threshold in seconds (default 5 ms).
    pub t_min: f64,
    /// Upper queuing-delay threshold in seconds (default 10 ms).
    pub t_max: f64,
    /// Response probability at `t_max` (default 0.05).
    pub p_max: f64,
}

impl ResponseCurve {
    /// The paper's fixed parameters: `(T_min, T_max, p_max) = (5 ms, 10 ms, 0.05)`.
    pub const PAPER_DEFAULT: ResponseCurve = ResponseCurve {
        t_min: 0.005,
        t_max: 0.010,
        p_max: 0.05,
    };

    /// Create a custom curve.
    ///
    /// # Panics
    /// Panics unless `0 < t_min < t_max` and `0 < p_max ≤ 1`.
    pub fn new(t_min: f64, t_max: f64, p_max: f64) -> Self {
        assert!(t_min > 0.0 && t_max > t_min, "need 0 < t_min < t_max");
        assert!(p_max > 0.0 && p_max <= 1.0, "p_max must be in (0,1]");
        ResponseCurve {
            t_min,
            t_max,
            p_max,
        }
    }

    /// The response probability for a queuing-delay estimate `qd` seconds.
    /// Total (piecewise-linear, monotonically non-decreasing, continuous).
    pub fn probability(&self, qd: f64) -> f64 {
        if !qd.is_finite() || qd < self.t_min {
            0.0
        } else if qd < self.t_max {
            self.p_max * (qd - self.t_min) / (self.t_max - self.t_min)
        } else if qd < 2.0 * self.t_max {
            self.p_max + (1.0 - self.p_max) * (qd - self.t_max) / self.t_max
        } else {
            1.0
        }
    }

    /// The slope `L_PERT = p_max / (T_max − T_min)` of the first segment,
    /// the loss-probability gain used by the stability analysis
    /// (Theorem 1, eq. 10).
    pub fn l_pert(&self) -> f64 {
        self.p_max / (self.t_max - self.t_min)
    }
}

impl Default for ResponseCurve {
    fn default() -> Self {
        Self::PAPER_DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_points_match_figure_5() {
        let c = ResponseCurve::PAPER_DEFAULT;
        assert_eq!(c.probability(0.000), 0.0);
        assert_eq!(c.probability(0.005), 0.0); // at T_min
        assert!((c.probability(0.0075) - 0.025).abs() < 1e-12); // midpoint
        assert!((c.probability(0.010) - 0.05).abs() < 1e-12); // at T_max
        assert!((c.probability(0.015) - 0.525).abs() < 1e-12); // gentle midpoint
        assert_eq!(c.probability(0.020), 1.0); // at 2·T_max
        assert_eq!(c.probability(0.100), 1.0);
    }

    #[test]
    fn continuous_at_segment_boundaries() {
        let c = ResponseCurve::new(0.004, 0.012, 0.07);
        let eps = 1e-9;
        for &x in &[c.t_min, c.t_max, 2.0 * c.t_max] {
            let lo = c.probability(x - eps);
            let hi = c.probability(x + eps);
            assert!((hi - lo).abs() < 1e-6, "discontinuity at {x}");
        }
    }

    #[test]
    fn monotone_nondecreasing() {
        let c = ResponseCurve::PAPER_DEFAULT;
        let mut prev = -1.0;
        for i in 0..2_000 {
            let p = c.probability(i as f64 * 0.000_02);
            assert!(p >= prev);
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
    }

    #[test]
    fn negative_or_nan_delay_yields_zero() {
        let c = ResponseCurve::PAPER_DEFAULT;
        assert_eq!(c.probability(-0.5), 0.0);
        assert_eq!(c.probability(f64::NAN), 0.0);
    }

    #[test]
    fn l_pert_gain() {
        let c = ResponseCurve::PAPER_DEFAULT;
        assert!((c.l_pert() - 10.0).abs() < 1e-9); // 0.05 / 0.005
    }

    #[test]
    #[should_panic(expected = "p_max must be in (0,1]")]
    fn rejects_bad_pmax() {
        let _ = ResponseCurve::new(0.005, 0.010, 1.5);
    }
}
