//! PERT/REM: emulating the REM AQM (Athuraliya, Li, Low & Yin 2001 —
//! reference \[2\] of the paper) at the end host.
//!
//! The paper's closing claim is that PERT "is flexible in the sense that
//! other AQM schemes can be potentially emulated at the end-host"; this
//! module demonstrates it with REM, whose router form maintains a *price*
//! driven by backlog and rate mismatch and marks with probability
//! `1 − φ^(−price)`:
//!
//! ```text
//! price ← max(0, price + γ·(α·(b − b*) + x − c))
//! ```
//!
//! At the end host the backlog is observed as queuing delay
//! (`b/C = T_q`) and the rate mismatch as the *change* in queuing delay
//! (`(x − c)/C = dT_q/dt`), both derived from the same `srtt_0.99`
//! signal PERT already maintains, giving the per-ACK update
//!
//! ```text
//! price ← max(0, price + γ·(α·(T_q − T_q*) + ΔT_q))
//! p     = 1 − φ^(−price)
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of the PERT/REM controller.
#[derive(Clone, Copy, Debug)]
pub struct PertRemParams {
    /// Price step size γ (per second of delay error per ACK).
    pub gamma: f64,
    /// Backlog weight α.
    pub alpha_w: f64,
    /// Marking base φ (> 1; REM's recommended 1.001 scales with the
    /// price units — the default here is calibrated for delay-priced
    /// updates).
    pub phi: f64,
    /// Queuing-delay target `T_q*`, seconds.
    pub target_delay: f64,
    /// Smoothed-delay history weight (the `srtt_0.99` filter).
    pub srtt_weight: f64,
    /// Multiplicative window-decrease factor on early response.
    pub decrease_factor: f64,
}

impl Default for PertRemParams {
    fn default() -> Self {
        PertRemParams {
            gamma: 0.02,
            alpha_w: 0.1,
            phi: 1.005,
            target_delay: 0.005,
            srtt_weight: 0.99,
            decrease_factor: 0.35,
        }
    }
}

impl PertRemParams {
    fn validate(&self) {
        assert!(self.gamma > 0.0, "gamma must be positive");
        assert!(self.alpha_w > 0.0, "alpha must be positive");
        assert!(self.phi > 1.0, "phi must exceed 1");
        assert!(self.target_delay >= 0.0);
        assert!((0.0..1.0).contains(&self.srtt_weight));
        assert!(self.decrease_factor > 0.0 && self.decrease_factor < 1.0);
    }
}

/// The per-flow PERT/REM state machine; drive with
/// [`PertRemController::on_ack`] like its RED- and PI-emulating siblings.
#[derive(Clone, Debug)]
pub struct PertRemController {
    params: PertRemParams,
    srtt: Option<f64>,
    min_rtt: Option<f64>,
    price: f64,
    prev_qd: f64,
    hold_until: f64,
    rng: SmallRng,
    /// Early responses taken.
    pub early_responses: u64,
}

impl PertRemController {
    /// Create with `params`; coin flips derive from `seed`.
    pub fn new(params: PertRemParams, seed: u64) -> Self {
        params.validate();
        PertRemController {
            params,
            srtt: None,
            min_rtt: None,
            price: 0.0,
            prev_qd: 0.0,
            hold_until: 0.0,
            rng: SmallRng::seed_from_u64(seed ^ 0x4e4d_7031),
            early_responses: 0,
        }
    }

    /// Update the filters and price without a response decision.
    pub fn observe(&mut self, rtt: f64) {
        assert!(rtt > 0.0 && rtt.is_finite(), "invalid RTT sample {rtt}");
        let w = self.params.srtt_weight;
        let srtt = match self.srtt {
            None => rtt,
            Some(s) => w * s + (1.0 - w) * rtt,
        };
        self.srtt = Some(srtt);
        self.min_rtt = Some(self.min_rtt.map_or(rtt, |m| m.min(rtt)));
        let qd = (srtt - self.min_rtt.expect("set")).max(0.0);
        let backlog = qd - self.params.target_delay;
        let mismatch = qd - self.prev_qd;
        self.price =
            (self.price + self.params.gamma * (self.params.alpha_w * backlog + mismatch)).max(0.0);
        self.prev_qd = qd;
    }

    /// Feed an RTT sample at `now` seconds; returns the decrease factor if
    /// the sender should reduce its window (at most once per RTT).
    pub fn on_ack(&mut self, now: f64, rtt: f64) -> Option<f64> {
        self.observe(rtt);
        let p = self.probability();
        if p <= 0.0 || self.rng.gen::<f64>() >= p {
            return None;
        }
        if now < self.hold_until {
            return None;
        }
        self.hold_until = now + self.srtt.unwrap_or(rtt);
        self.early_responses += 1;
        Some(self.params.decrease_factor)
    }

    /// REM's exponential marking law `1 − φ^(−price)`.
    pub fn probability(&self) -> f64 {
        1.0 - self.params.phi.powf(-self.price)
    }

    /// The current price.
    pub fn price(&self) -> f64 {
        self.price
    }

    /// Current queuing-delay estimate, seconds.
    pub fn queuing_delay(&self) -> Option<f64> {
        Some((self.srtt? - self.min_rtt?).max(0.0))
    }

    /// The configured parameters.
    pub fn params(&self) -> &PertRemParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn price_rises_under_excess_delay_and_decays_below_target() {
        let mut c = PertRemController::new(PertRemParams::default(), 1);
        c.on_ack(0.0, 0.060);
        for i in 1..5_000 {
            c.on_ack(i as f64 * 0.001, 0.090); // 30 ms ≫ 5 ms target
        }
        let high = c.price();
        assert!(high > 0.0);
        assert!(c.probability() > 0.0);
        // Long spell at base RTT: srtt sinks below target, price unwinds.
        for i in 5_000..60_000 {
            c.on_ack(i as f64 * 0.001, 0.060);
        }
        assert!(c.price() < high);
    }

    #[test]
    fn probability_is_rem_law() {
        let mut c = PertRemController::new(
            PertRemParams {
                phi: 2.0,
                ..Default::default()
            },
            1,
        );
        c.price = 1.0;
        assert!((c.probability() - 0.5).abs() < 1e-12);
        c.price = 0.0;
        assert_eq!(c.probability(), 0.0);
        c.price = 10.0;
        assert!(c.probability() > 0.999);
    }

    #[test]
    fn price_never_negative_probability_in_unit_interval() {
        let mut c = PertRemController::new(PertRemParams::default(), 3);
        for i in 0..50_000 {
            let rtt = if i % 100 < 50 { 0.060 } else { 0.030 };
            c.on_ack(i as f64 * 0.001, rtt);
            assert!(c.price() >= 0.0);
            let p = c.probability();
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn responds_once_per_rtt_at_most() {
        let mut c = PertRemController::new(PertRemParams::default(), 5);
        c.on_ack(0.0, 0.050);
        let mut last: Option<f64> = None;
        let mut now = 0.0;
        for _ in 0..100_000 {
            now += 0.0005;
            if c.on_ack(now, 0.300).is_some() {
                if let Some(prev) = last {
                    assert!(now - prev >= 0.05 - 1e-9);
                }
                last = Some(now);
            }
        }
        assert!(c.early_responses > 0);
    }

    #[test]
    #[should_panic(expected = "phi must exceed 1")]
    fn rejects_bad_phi() {
        let _ = PertRemController::new(
            PertRemParams {
                phi: 0.9,
                ..Default::default()
            },
            0,
        );
    }
}
