//! The PERT controller (paper §3): `srtt_0.99` congestion prediction plus
//! probabilistic early response, packaged as a transport-independent state
//! machine a TCP sender drives once per ACK.
//!
//! ```
//! use pert_core::pert::{PertController, PertParams, EarlyResponse};
//!
//! let mut pert = PertController::new(PertParams::default(), 42);
//! // On every ACK: feed the new RTT sample; maybe get a decrease decision.
//! match pert.on_ack(/*now=*/1.0, /*rtt=*/0.068) {
//!     Some(EarlyResponse { factor }) => assert!(factor > 0.0 && factor < 1.0),
//!     None => {}
//! }
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[cfg(feature = "audit")]
use crate::audit;
use crate::estimators::Ewma;
#[cfg(feature = "audit")]
use crate::reference::PertReference;
use crate::response::ResponseCurve;
#[cfg(feature = "telemetry")]
use crate::telemetry;

/// Configuration of the PERT controller.
#[derive(Clone, Copy, Debug)]
pub struct PertParams {
    /// History weight of the smoothed-RTT filter (paper: 0.99).
    pub srtt_weight: f64,
    /// The probabilistic response curve on queuing delay.
    pub curve: ResponseCurve,
    /// Multiplicative window-decrease factor applied on an early response
    /// (paper: 0.35, i.e. `cwnd ← 0.65·cwnd`), chosen from the
    /// buffer-sizing relation `B > f/(1−f)·BDP` so that early responses
    /// keep the queue below half of a one-BDP buffer.
    pub decrease_factor: f64,
}

impl Default for PertParams {
    fn default() -> Self {
        PertParams {
            srtt_weight: 0.99,
            curve: ResponseCurve::PAPER_DEFAULT,
            decrease_factor: 0.35,
        }
    }
}

impl PertParams {
    fn validate(&self) {
        assert!(
            (0.0..1.0).contains(&self.srtt_weight),
            "srtt_weight must be in [0,1)"
        );
        assert!(
            self.decrease_factor > 0.0 && self.decrease_factor < 1.0,
            "decrease_factor must be in (0,1)"
        );
    }
}

/// Regime code: the sender is in congestion avoidance.
pub const REGIME_CONG_AVOID: u8 = 0;
/// Regime code: the sender is in slow start (`cwnd < ssthresh`).
pub const REGIME_SLOW_START: u8 = 1;
/// Regime code: inside a post-response hold window. Never emitted on a
/// `pert/response` record (responses are suppressed during holds); reserved
/// for trace-side regime timelines.
pub const REGIME_LOSS_HOLD: u8 = 2;
/// Regime code: loss recovery. Never emitted on a `pert/response` record
/// (the controller is not consulted during recovery); reserved for
/// trace-side regime timelines.
pub const REGIME_RECOVERY: u8 = 3;

/// Pack a regime code and a response probability into one telemetry value:
/// `regime·100_000 + round(p·10_000)`. The probability lands in basis
/// points (0..=10_000), so the two fields never collide and both survive
/// the f64 round-trip exactly. Decode with [`decode_response`].
pub fn encode_response(regime: u8, p: f64) -> f64 {
    let bp = (p.clamp(0.0, 1.0) * 10_000.0).round();
    f64::from(regime) * 100_000.0 + bp
}

/// Split a `pert/response` value back into `(regime, probability_bp)`.
/// Legacy records (plain `1.0`) decode as `(REGIME_CONG_AVOID, 1)`.
pub fn decode_response(value: f64) -> (u8, u32) {
    let v = value.max(0.0).round() as u64;
    ((v / 100_000) as u8, (v % 100_000) as u32)
}

/// A decision to reduce the congestion window early.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EarlyResponse {
    /// Multiplicative decrease factor: the sender should set
    /// `cwnd ← (1 − factor)·cwnd`.
    pub factor: f64,
}

/// Running statistics a PERT controller keeps about its own activity.
#[derive(Clone, Copy, Debug, Default)]
pub struct PertStats {
    /// ACKs processed.
    pub acks: u64,
    /// Early responses taken.
    pub early_responses: u64,
    /// ACKs whose response coin-flip came up "respond" but were suppressed
    /// by the once-per-RTT rule.
    pub suppressed: u64,
}

/// The per-flow PERT state machine.
#[derive(Clone, Debug)]
pub struct PertController {
    params: PertParams,
    srtt: Ewma,
    min_rtt: Option<f64>,
    /// Time before which early responses are suppressed (one RTT after the
    /// previous response — the paper limits early response to once per RTT
    /// because its effect is not visible sooner).
    hold_until: f64,
    /// A loss response that arrived before the first RTT sample: its hold
    /// window cannot be sized yet, so it is deferred until the first
    /// sample defines what "one RTT" means.
    pending_loss: Option<f64>,
    rng: SmallRng,
    /// Regime code the hosting sender last reported (`REGIME_*`); tags
    /// `pert/response` records so traces can attribute each early response
    /// to slow start vs congestion avoidance.
    regime: u8,
    /// Activity counters.
    pub stats: PertStats,
    /// Differential oracle: straight-line §3 srtt/prop transcription.
    #[cfg(feature = "audit")]
    shadow: Option<PertReference>,
    /// Telemetry key (the construction seed) when a tap attached; the
    /// controller publishes `pert/srtt`, `pert/qdelay` and `pert/prob`
    /// on every decision. `None` ⇒ zero-cost.
    #[cfg(feature = "telemetry")]
    tap_key: Option<u64>,
}

impl PertController {
    /// Create a controller with `params`, drawing response coin flips from
    /// a deterministic RNG seeded with `seed`.
    pub fn new(params: PertParams, seed: u64) -> Self {
        params.validate();
        PertController {
            params,
            srtt: Ewma::new(params.srtt_weight),
            min_rtt: None,
            hold_until: 0.0,
            pending_loss: None,
            rng: SmallRng::seed_from_u64(seed ^ 0x0007_0e57_ca75),
            regime: REGIME_CONG_AVOID,
            stats: PertStats::default(),
            #[cfg(feature = "audit")]
            shadow: audit::enabled().then(|| PertReference::new(params.srtt_weight)),
            #[cfg(feature = "telemetry")]
            tap_key: telemetry::enabled().then_some(seed),
        }
    }

    /// Update the RTT filters without making a response decision. Use this
    /// for samples that arrive while the sender is already reacting to
    /// congestion (e.g. during loss recovery), so the `srtt_0.99` signal
    /// never goes stale.
    pub fn observe(&mut self, rtt: f64) {
        assert!(rtt > 0.0 && rtt.is_finite(), "invalid RTT sample {rtt}");
        self.stats.acks += 1;
        let srtt = self.srtt.update(rtt);
        self.min_rtt = Some(self.min_rtt.map_or(rtt, |m| m.min(rtt)));
        if let Some(at) = self.pending_loss.take() {
            // First sample after an unsampled loss: size its hold window now.
            self.hold_until = self.hold_until.max(at + srtt);
        }
        #[cfg(feature = "audit")]
        if let Some(shadow) = &mut self.shadow {
            shadow.on_sample(rtt);
            audit::count_oracle_checks(1);
            if !audit::close_opt(shadow.srtt(), self.srtt.value())
                || !audit::close_opt(shadow.min_rtt(), self.min_rtt)
            {
                audit::violation(
                    "pert-srtt",
                    format_args!(
                        "srtt diverged from §3 reference after ack #{}: \
                         srtt={:?} ref={:?}, min_rtt={:?} ref={:?}, sample={rtt}",
                        self.stats.acks,
                        self.srtt.value(),
                        shadow.srtt(),
                        self.min_rtt,
                        shadow.min_rtt(),
                    ),
                );
            }
        }
    }

    /// Feed the RTT sample from an arriving ACK at time `now` (seconds).
    /// Returns a decrease decision, at most once per RTT.
    pub fn on_ack(&mut self, now: f64, rtt: f64) -> Option<EarlyResponse> {
        self.observe(rtt);
        let hold = self.srtt.value().expect("observe() set it");
        self.decide(now, hold)
    }

    /// Like [`PertController::on_ack`] but with an explicit hold window:
    /// after a response, further responses are suppressed for `hold`
    /// seconds. Used when the congestion signal is a one-way delay (§7) —
    /// the signal is roughly half an RTT, but responses must still be
    /// limited to once per *round trip*.
    pub fn on_ack_with_hold(
        &mut self,
        now: f64,
        delay_signal: f64,
        hold: f64,
    ) -> Option<EarlyResponse> {
        self.observe(delay_signal);
        self.decide(now, hold)
    }

    fn decide(&mut self, now: f64, hold: f64) -> Option<EarlyResponse> {
        let srtt = self.srtt.value().expect("observe() ran");
        let prop = self.min_rtt.expect("observe() ran");

        let qd = (srtt - prop).max(0.0);
        let p = self.params.curve.probability(qd);
        #[cfg(feature = "telemetry")]
        if let Some(key) = self.tap_key {
            telemetry::record("pert/srtt", key, now, srtt);
            telemetry::record("pert/qdelay", key, now, qd);
            telemetry::record("pert/prob", key, now, p);
        }
        if p <= 0.0 {
            return None;
        }
        if self.rng.gen::<f64>() >= p {
            return None;
        }
        if now < self.hold_until {
            self.stats.suppressed += 1;
            return None;
        }
        self.hold_until = now + hold;
        self.stats.early_responses += 1;
        #[cfg(feature = "telemetry")]
        if let Some(key) = self.tap_key {
            telemetry::record("pert/response", key, now, encode_response(self.regime, p));
        }
        Some(EarlyResponse {
            factor: self.params.decrease_factor,
        })
    }

    /// Tell the controller which regime the hosting sender is in
    /// (`REGIME_CONG_AVOID` / `REGIME_SLOW_START`), so the next early
    /// response record carries it. Cheap enough to call on every ACK.
    pub fn set_regime(&mut self, code: u8) {
        self.regime = code;
    }

    /// Tell the controller a loss-triggered (non-early) response happened,
    /// so that early responses are also suppressed for one RTT.
    ///
    /// A loss that arrives before the first RTT sample cannot size the
    /// window yet; it is remembered and applied when the first sample
    /// arrives (`hold_until = loss_time + first_srtt`), so the
    /// once-per-RTT rule holds from the very first loss instead of
    /// collapsing to a zero-length window.
    pub fn on_loss_response(&mut self, now: f64) {
        match self.srtt.value() {
            Some(rtt) => self.hold_until = self.hold_until.max(now + rtt),
            None => self.pending_loss = Some(self.pending_loss.map_or(now, |p| p.max(now))),
        }
    }

    /// Current smoothed RTT (`srtt_0.99`), seconds.
    pub fn srtt(&self) -> Option<f64> {
        self.srtt.value()
    }

    /// Current propagation-delay estimate (minimum RTT), seconds.
    pub fn min_rtt(&self) -> Option<f64> {
        self.min_rtt
    }

    /// Current queuing-delay estimate `srtt − min_rtt`, seconds.
    pub fn queuing_delay(&self) -> Option<f64> {
        Some((self.srtt.value()? - self.min_rtt?).max(0.0))
    }

    /// The configured parameters.
    pub fn params(&self) -> &PertParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_response_at_base_rtt() {
        let mut c = PertController::new(PertParams::default(), 1);
        for i in 0..10_000 {
            assert_eq!(c.on_ack(i as f64 * 0.01, 0.060), None);
        }
        assert_eq!(c.stats.early_responses, 0);
    }

    #[test]
    fn responds_under_sustained_queuing_delay() {
        let mut c = PertController::new(PertParams::default(), 1);
        // Establish the propagation estimate.
        c.on_ack(0.0, 0.060);
        // Sustained 30 ms of queuing delay → srtt converges above T_max,
        // responses must start.
        let mut responses = 0;
        for i in 1..20_000 {
            if c.on_ack(i as f64 * 0.001, 0.090).is_some() {
                responses += 1;
            }
        }
        assert!(responses > 0, "no early response under heavy queuing");
        assert_eq!(c.stats.early_responses, responses);
    }

    #[test]
    fn at_most_one_response_per_rtt() {
        let mut c = PertController::new(PertParams::default(), 1);
        c.on_ack(0.0, 0.060);
        // Saturate the curve (qd far beyond 2·T_max → p = 1 eventually).
        let mut times = Vec::new();
        let mut now = 0.0;
        for _ in 0..50_000 {
            now += 0.0002; // 5000 ACKs per second
            if c.on_ack(now, 0.200).is_some() {
                times.push((now, c.srtt().unwrap()));
            }
        }
        assert!(times.len() > 1);
        for w in times.windows(2) {
            let (t0, srtt0) = w[0];
            let (t1, _) = w[1];
            assert!(
                t1 - t0 >= srtt0 - 1e-9,
                "responses {t0} and {t1} closer than one RTT ({srtt0})"
            );
        }
        assert!(c.stats.suppressed > 0);
    }

    #[test]
    fn decrease_factor_propagates() {
        let params = PertParams {
            decrease_factor: 0.5,
            ..Default::default()
        };
        let mut c = PertController::new(params, 3);
        c.on_ack(0.0, 0.060);
        let mut got = None;
        for i in 1..100_000 {
            if let Some(r) = c.on_ack(i as f64 * 0.001, 0.300) {
                got = Some(r);
                break;
            }
        }
        assert_eq!(got, Some(EarlyResponse { factor: 0.5 }));
    }

    #[test]
    fn loss_response_suppresses_early_response() {
        let mut c = PertController::new(PertParams::default(), 1);
        c.on_ack(0.0, 0.060);
        // Drive srtt high.
        let mut now = 0.0;
        for _ in 0..5_000 {
            now += 0.001;
            c.on_ack(now, 0.300);
        }
        c.on_loss_response(now);
        let hold = now + c.srtt().unwrap();
        // No early response until one RTT has passed.
        while now < hold - 0.002 {
            now += 0.001;
            assert_eq!(c.on_ack(now, 0.300), None);
        }
    }

    #[test]
    fn loss_before_first_sample_still_suppresses_for_one_rtt() {
        let mut c = PertController::new(PertParams::default(), 1);
        // A loss response arrives before any RTT sample exists (e.g. a SYN
        // or first-window segment is lost)…
        c.on_loss_response(0.0);
        // …then the first sample (500 ms) arrives and defines "one RTT":
        // the hold window must end at 0.0 + 0.5, not collapse to zero.
        assert_eq!(c.on_ack(0.001, 0.500), None); // qd = 0 at the first sample
                                                  // A low propagation floor appears while srtt stays high, so
                                                  // srtt − min_rtt saturates the response curve immediately — only
                                                  // the hold window can now stand between the controller and an
                                                  // early response.
        let mut now = 0.002;
        assert_eq!(c.on_ack(now, 0.050), None);
        let mut first = None;
        while now < 1.0 {
            now += 0.001;
            if c.on_ack(now, 0.300).is_some() {
                first = Some(now);
                break;
            }
        }
        let first = first.expect("saturated curve must respond once the hold expires");
        assert!(
            first >= 0.5 - 1e-9,
            "early response at {first}, inside the first-RTT hold window"
        );
        assert!(
            c.stats.suppressed > 0,
            "hold window never suppressed anything"
        );
    }

    #[test]
    fn queuing_delay_estimate() {
        let mut c = PertController::new(PertParams::default(), 1);
        assert_eq!(c.queuing_delay(), None);
        c.on_ack(0.0, 0.060);
        assert!(c.queuing_delay().unwrap() < 1e-12);
        for i in 1..50_000 {
            c.on_ack(i as f64 * 0.001, 0.080);
        }
        let qd = c.queuing_delay().unwrap();
        assert!((qd - 0.020).abs() < 0.001, "qd = {qd}");
    }

    #[test]
    fn response_rate_tracks_curve_probability() {
        // With qd pinned mid-ramp and the once-per-RTT rule relaxed by
        // spacing ACKs a full RTT apart, the empirical response rate should
        // approximate the curve's probability.
        let params = PertParams::default();
        let mut c = PertController::new(params, 7);
        c.on_ack(0.0, 0.060);
        // Converge srtt to 60 ms + 7.5 ms queuing delay → p = 0.025.
        let mut now = 0.0;
        for _ in 0..200_000 {
            now += 0.001;
            c.on_ack(now, 0.0675);
        }
        let expect = params.curve.probability(c.queuing_delay().unwrap());
        let mut hits = 0;
        let trials = 20_000;
        for _ in 0..trials {
            now += 1.0; // far beyond the hold window
            if c.on_ack(now, 0.0675).is_some() {
                hits += 1;
            }
        }
        let rate = hits as f64 / trials as f64;
        assert!(
            (rate - expect).abs() < 0.01,
            "rate {rate} vs curve {expect}"
        );
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let run = || {
            let mut c = PertController::new(PertParams::default(), 99);
            let mut out = Vec::new();
            for i in 0..5_000 {
                out.push(c.on_ack(i as f64 * 0.001, 0.100).is_some());
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "invalid RTT")]
    fn rejects_nonpositive_rtt() {
        let mut c = PertController::new(PertParams::default(), 1);
        c.on_ack(0.0, 0.0);
    }

    #[test]
    fn response_encoding_round_trips() {
        for regime in [
            REGIME_CONG_AVOID,
            REGIME_SLOW_START,
            REGIME_LOSS_HOLD,
            REGIME_RECOVERY,
        ] {
            for p in [0.0, 0.0001, 0.025, 0.5, 0.99995, 1.0] {
                let (r, bp) = decode_response(encode_response(regime, p));
                assert_eq!(r, regime);
                assert_eq!(bp, (p * 10_000.0).round() as u32, "p={p}");
            }
        }
        // Legacy plain-1.0 records stay decodable.
        assert_eq!(decode_response(1.0), (REGIME_CONG_AVOID, 1));
        // Out-of-range probabilities clamp instead of bleeding into the
        // regime field.
        assert_eq!(decode_response(encode_response(1, 7.5)), (1, 10_000));
    }
}
