//! End-host congestion predictors (paper §2.3–§2.4, Figure 3).
//!
//! Each predictor consumes the per-ACK stream an end host can observe —
//! time, instantaneous RTT, and the sender's congestion window — and emits
//! a binary congestion state: `Low` (state A of the paper's Figure 1) or
//! `High` (state B). The `stats` crate's transition analyzer then scores
//! predictions against queue-level losses.
//!
//! Implemented predictors and their primary sources:
//! * [`InstRtt`] — instantaneous RTT vs. a fixed threshold (paper §2.4),
//! * [`MovingAvgRtt`] — buffer-sized moving average vs. threshold (§2.4),
//! * [`EwmaRtt`] — EWMA (weight 7/8 or 0.99 = `srtt_0.99`) vs. threshold,
//! * [`VegasPredictor`] — Brakmo & Peterson's expected-vs-actual test,
//! * [`Card`] — Jain's normalized delay gradient (CARD),
//! * [`TriS`] — Wang & Crowcroft's normalized throughput gradient,
//! * [`Dual`] — Wang & Crowcroft's RTT-vs-(min+max)/2 test,
//! * [`Cim`] — Martin, Nilsson & Rhee's short-vs-long moving-average test,
//! * [`SyncTcpTrend`] — Weigle, Jeffay & Smith's one-way-delay trend test
//!   (Sync-TCP, §2.1 of the paper).

use crate::estimators::{Ewma, MinMax, MovingAverage};

/// Binary congestion state reported by a predictor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CongestionState {
    /// Low delay / low congestion (state A in Fig. 1).
    Low,
    /// High delay / congestion building (state B in Fig. 1).
    High,
}

/// One per-ACK observation available at the sender.
#[derive(Clone, Copy, Debug)]
pub struct AckSample {
    /// Time the ACK arrived, in seconds.
    pub at: f64,
    /// RTT measured from this ACK, in seconds.
    pub rtt: f64,
    /// Forward one-way delay echoed by the receiver, in seconds (used by
    /// the Sync-TCP trend predictor; equals `rtt/2` on symmetric paths).
    pub owd: f64,
    /// Sender congestion window at that moment, in segments.
    pub cwnd: f64,
}

/// A congestion predictor driven by per-ACK samples.
pub trait Predictor {
    /// Fold in one observation and report the current state.
    fn on_sample(&mut self, s: &AckSample) -> CongestionState;

    /// Short display name for reports.
    fn name(&self) -> &'static str;

    /// Forget all history (e.g. between trace replays).
    fn reset(&mut self);
}

/// Instantaneous RTT against a fixed threshold.
///
/// The most aggressive signal considered in §2.4: high prediction
/// efficiency but noisy (many false positives).
#[derive(Clone, Debug)]
pub struct InstRtt {
    /// Threshold in seconds.
    pub threshold: f64,
}

impl InstRtt {
    /// Create with an absolute RTT threshold (seconds).
    pub fn new(threshold: f64) -> Self {
        assert!(threshold > 0.0);
        InstRtt { threshold }
    }
}

impl Predictor for InstRtt {
    fn on_sample(&mut self, s: &AckSample) -> CongestionState {
        if s.rtt > self.threshold {
            CongestionState::High
        } else {
            CongestionState::Low
        }
    }
    fn name(&self) -> &'static str {
        "inst-rtt"
    }
    fn reset(&mut self) {}
}

/// Moving average of the last `window` RTT samples against a threshold
/// (§2.4 sizes the window to the bottleneck buffer: 750).
#[derive(Clone, Debug)]
pub struct MovingAvgRtt {
    ma: MovingAverage,
    threshold: f64,
    window: usize,
}

impl MovingAvgRtt {
    /// Create with the given window (samples) and threshold (seconds).
    pub fn new(window: usize, threshold: f64) -> Self {
        assert!(threshold > 0.0);
        MovingAvgRtt {
            ma: MovingAverage::new(window),
            threshold,
            window,
        }
    }
}

impl Predictor for MovingAvgRtt {
    fn on_sample(&mut self, s: &AckSample) -> CongestionState {
        if self.ma.update(s.rtt) > self.threshold {
            CongestionState::High
        } else {
            CongestionState::Low
        }
    }
    fn name(&self) -> &'static str {
        "mavg-rtt"
    }
    fn reset(&mut self) {
        self.ma = MovingAverage::new(self.window);
    }
}

/// EWMA-smoothed RTT against a threshold. With `alpha = 0.99` this is the
/// paper's chosen signal `srtt_0.99`.
#[derive(Clone, Debug)]
pub struct EwmaRtt {
    ewma: Ewma,
    threshold: f64,
}

impl EwmaRtt {
    /// Create with history weight `alpha` and threshold (seconds).
    pub fn new(alpha: f64, threshold: f64) -> Self {
        assert!(threshold > 0.0);
        EwmaRtt {
            ewma: Ewma::new(alpha),
            threshold,
        }
    }

    /// The paper's `srtt_0.99` predictor.
    pub fn srtt_099(threshold: f64) -> Self {
        EwmaRtt::new(0.99, threshold)
    }
}

impl Predictor for EwmaRtt {
    fn on_sample(&mut self, s: &AckSample) -> CongestionState {
        if self.ewma.update(s.rtt) > self.threshold {
            CongestionState::High
        } else {
            CongestionState::Low
        }
    }
    fn name(&self) -> &'static str {
        "ewma-rtt"
    }
    fn reset(&mut self) {
        self.ewma.reset();
    }
}

/// Vegas congestion detection (Brakmo & Peterson 1994): once per RTT,
/// compare expected throughput `cwnd/base_rtt` with actual `cwnd/rtt`;
/// the backlog estimate is `diff = cwnd · (rtt − base)/rtt` segments.
/// State is `High` when `diff > beta` (Vegas' upper threshold, default 3).
#[derive(Clone, Debug)]
pub struct VegasPredictor {
    /// Upper backlog threshold in segments (Vegas' β).
    pub beta: f64,
    base_rtt: Option<f64>,
    next_eval: f64,
    state: CongestionState,
}

impl VegasPredictor {
    /// Create with Vegas' default β = 3 segments.
    pub fn new() -> Self {
        Self::with_beta(3.0)
    }

    /// Create with a custom β.
    pub fn with_beta(beta: f64) -> Self {
        assert!(beta > 0.0);
        VegasPredictor {
            beta,
            base_rtt: None,
            next_eval: 0.0,
            state: CongestionState::Low,
        }
    }
}

impl Default for VegasPredictor {
    fn default() -> Self {
        Self::new()
    }
}

impl Predictor for VegasPredictor {
    fn on_sample(&mut self, s: &AckSample) -> CongestionState {
        let base = match self.base_rtt {
            None => {
                self.base_rtt = Some(s.rtt);
                s.rtt
            }
            Some(b) => {
                let b = b.min(s.rtt);
                self.base_rtt = Some(b);
                b
            }
        };
        // Evaluate once per RTT, as Vegas does.
        if s.at >= self.next_eval {
            self.next_eval = s.at + s.rtt;
            let diff = s.cwnd * (s.rtt - base) / s.rtt.max(1e-9);
            self.state = if diff > self.beta {
                CongestionState::High
            } else {
                CongestionState::Low
            };
        }
        self.state
    }
    fn name(&self) -> &'static str {
        "vegas"
    }
    fn reset(&mut self) {
        self.base_rtt = None;
        self.next_eval = 0.0;
        self.state = CongestionState::Low;
    }
}

/// CARD (Jain 1989): once per RTT, the normalized delay gradient
/// `NDG = (rtt_i − rtt_{i−1}) / (rtt_i + rtt_{i−1})`; congestion when
/// `NDG > 0` (delay increasing past the knee).
#[derive(Clone, Debug)]
pub struct Card {
    prev_rtt: Option<f64>,
    next_eval: f64,
    state: CongestionState,
}

impl Card {
    /// Create a CARD predictor.
    pub fn new() -> Self {
        Card {
            prev_rtt: None,
            next_eval: 0.0,
            state: CongestionState::Low,
        }
    }
}

impl Default for Card {
    fn default() -> Self {
        Self::new()
    }
}

impl Predictor for Card {
    fn on_sample(&mut self, s: &AckSample) -> CongestionState {
        if s.at >= self.next_eval {
            self.next_eval = s.at + s.rtt;
            if let Some(prev) = self.prev_rtt {
                let ndg = (s.rtt - prev) / (s.rtt + prev).max(1e-12);
                self.state = if ndg > 0.0 {
                    CongestionState::High
                } else {
                    CongestionState::Low
                };
            }
            self.prev_rtt = Some(s.rtt);
        }
        self.state
    }
    fn name(&self) -> &'static str {
        "card"
    }
    fn reset(&mut self) {
        self.prev_rtt = None;
        self.next_eval = 0.0;
        self.state = CongestionState::Low;
    }
}

/// TRI-S (Wang & Crowcroft 1991): once per RTT, the normalized throughput
/// gradient `NTG = (T_i − T_{i−1}) / (T_i + T_{i−1})` with `T = cwnd/rtt`;
/// congestion when throughput has flattened (`NTG ≤ ntg_threshold`) while
/// the window kept growing.
#[derive(Clone, Debug)]
pub struct TriS {
    /// Flatness threshold on the normalized gradient.
    pub ntg_threshold: f64,
    prev: Option<(f64, f64)>, // (throughput, cwnd)
    next_eval: f64,
    state: CongestionState,
}

impl TriS {
    /// Create with the conventional small flatness threshold (0.05).
    pub fn new() -> Self {
        TriS {
            ntg_threshold: 0.05,
            prev: None,
            next_eval: 0.0,
            state: CongestionState::Low,
        }
    }
}

impl Default for TriS {
    fn default() -> Self {
        Self::new()
    }
}

impl Predictor for TriS {
    fn on_sample(&mut self, s: &AckSample) -> CongestionState {
        if s.at >= self.next_eval {
            self.next_eval = s.at + s.rtt;
            let tput = s.cwnd / s.rtt.max(1e-9);
            if let Some((pt, pw)) = self.prev {
                let ntg = (tput - pt) / (tput + pt).max(1e-12);
                let window_grew = s.cwnd > pw;
                self.state = if window_grew && ntg <= self.ntg_threshold {
                    CongestionState::High
                } else {
                    CongestionState::Low
                };
            }
            self.prev = Some((tput, s.cwnd));
        }
        self.state
    }
    fn name(&self) -> &'static str {
        "tri-s"
    }
    fn reset(&mut self) {
        self.prev = None;
        self.next_eval = 0.0;
        self.state = CongestionState::Low;
    }
}

/// DUAL (Wang & Crowcroft 1992): congestion when the current RTT exceeds
/// the midpoint of the observed minimum and maximum RTT (i.e. the queue is
/// estimated to be more than half full). Evaluated once per RTT as in the
/// original (every other window adjustment in DUAL proper).
#[derive(Clone, Debug)]
pub struct Dual {
    minmax: MinMax,
    next_eval: f64,
    state: CongestionState,
}

impl Dual {
    /// Create a DUAL predictor.
    pub fn new() -> Self {
        Dual {
            minmax: MinMax::new(),
            next_eval: 0.0,
            state: CongestionState::Low,
        }
    }
}

impl Default for Dual {
    fn default() -> Self {
        Self::new()
    }
}

impl Predictor for Dual {
    fn on_sample(&mut self, s: &AckSample) -> CongestionState {
        self.minmax.update(s.rtt);
        if s.at >= self.next_eval {
            self.next_eval = s.at + s.rtt;
            let mid = self.minmax.midpoint().expect("updated above");
            self.state = if s.rtt > mid {
                CongestionState::High
            } else {
                CongestionState::Low
            };
        }
        self.state
    }
    fn name(&self) -> &'static str {
        "dual"
    }
    fn reset(&mut self) {
        self.minmax = MinMax::new();
        self.next_eval = 0.0;
        self.state = CongestionState::Low;
    }
}

/// CIM (Martin, Nilsson & Rhee 2003): compare a short moving average of
/// RTTs against a long one; congestion when the short average exceeds the
/// long by more than `ratio` (i.e. recent delay above historical norm).
#[derive(Clone, Debug)]
pub struct Cim {
    short: MovingAverage,
    long: MovingAverage,
    short_n: usize,
    long_n: usize,
    /// Required excess of short over long average (multiplicative).
    pub ratio: f64,
}

impl Cim {
    /// CIM with its conventional windows (8 vs. 100 samples) and a 5 %
    /// excess requirement.
    pub fn new() -> Self {
        Self::with_windows(8, 100, 1.05)
    }

    /// Fully parameterized constructor.
    pub fn with_windows(short_n: usize, long_n: usize, ratio: f64) -> Self {
        assert!(short_n < long_n, "short window must be shorter");
        assert!(ratio >= 1.0);
        Cim {
            short: MovingAverage::new(short_n),
            long: MovingAverage::new(long_n),
            short_n,
            long_n,
            ratio,
        }
    }
}

impl Default for Cim {
    fn default() -> Self {
        Self::new()
    }
}

impl Predictor for Cim {
    fn on_sample(&mut self, s: &AckSample) -> CongestionState {
        let sh = self.short.update(s.rtt);
        let lo = self.long.update(s.rtt);
        if sh > lo * self.ratio {
            CongestionState::High
        } else {
            CongestionState::Low
        }
    }
    fn name(&self) -> &'static str {
        "cim"
    }
    fn reset(&mut self) {
        self.short = MovingAverage::new(self.short_n);
        self.long = MovingAverage::new(self.long_n);
    }
}

/// Sync-TCP's congestion detector (Weigle, Jeffay & Smith 2005): monitor
/// the *trend* of forward one-way delays. The window of the most recent
/// `GROUPS × GROUP_SIZE` OWD samples is split into groups, each group is
/// summarized by its median, and congestion is flagged when the medians
/// increase monotonically — a robust "delays are trending up" test.
#[derive(Clone, Debug)]
pub struct SyncTcpTrend {
    window: std::collections::VecDeque<f64>,
    state: CongestionState,
}

impl SyncTcpTrend {
    /// Number of groups in the trend test.
    pub const GROUPS: usize = 3;
    /// Samples per group.
    pub const GROUP_SIZE: usize = 3;

    /// Create a Sync-TCP trend predictor.
    pub fn new() -> Self {
        SyncTcpTrend {
            window: std::collections::VecDeque::with_capacity(Self::GROUPS * Self::GROUP_SIZE),
            state: CongestionState::Low,
        }
    }

    fn median3(a: f64, b: f64, c: f64) -> f64 {
        a.max(b).min(a.min(b).max(c))
    }
}

impl Default for SyncTcpTrend {
    fn default() -> Self {
        Self::new()
    }
}

impl Predictor for SyncTcpTrend {
    fn on_sample(&mut self, s: &AckSample) -> CongestionState {
        let cap = Self::GROUPS * Self::GROUP_SIZE;
        if self.window.len() == cap {
            self.window.pop_front();
        }
        self.window.push_back(s.owd);
        if self.window.len() == cap {
            let v: Vec<f64> = self.window.iter().copied().collect();
            let m: Vec<f64> = v
                .chunks(Self::GROUP_SIZE)
                .map(|g| Self::median3(g[0], g[1], g[2]))
                .collect();
            self.state = if m.windows(2).all(|w| w[1] > w[0]) {
                CongestionState::High
            } else {
                CongestionState::Low
            };
        }
        self.state
    }
    fn name(&self) -> &'static str {
        "sync-tcp"
    }
    fn reset(&mut self) {
        self.window.clear();
        self.state = CongestionState::Low;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(at: f64, rtt: f64, cwnd: f64) -> AckSample {
        AckSample {
            at,
            rtt,
            owd: rtt / 2.0,
            cwnd,
        }
    }

    /// Feed a flat-then-rising RTT trace and return states at the end of
    /// each phase.
    fn drive(p: &mut dyn Predictor) -> (CongestionState, CongestionState) {
        let mut last_flat = CongestionState::Low;
        let mut t = 0.0;
        for _ in 0..200 {
            last_flat = p.on_sample(&sample(t, 0.050, 10.0));
            t += 0.01;
        }
        let mut last_high = last_flat;
        for i in 0..200 {
            let rtt = 0.050 + 0.0005 * i as f64; // ramps to 150 ms
            last_high = p.on_sample(&sample(t, rtt, 10.0));
            t += rtt;
        }
        (last_flat, last_high)
    }

    #[test]
    fn inst_rtt_thresholds() {
        let mut p = InstRtt::new(0.065);
        assert_eq!(p.on_sample(&sample(0.0, 0.060, 1.0)), CongestionState::Low);
        assert_eq!(p.on_sample(&sample(0.0, 0.070, 1.0)), CongestionState::High);
    }

    #[test]
    fn ewma_rtt_lags_instantaneous() {
        let mut p = EwmaRtt::srtt_099(0.065);
        // A single spike does not flip the heavily-smoothed signal...
        p.on_sample(&sample(0.0, 0.060, 1.0));
        assert_eq!(p.on_sample(&sample(0.0, 0.200, 1.0)), CongestionState::Low);
        // ...but a sustained rise does.
        let mut st = CongestionState::Low;
        for i in 0..600 {
            st = p.on_sample(&sample(i as f64 * 0.01, 0.100, 1.0));
        }
        assert_eq!(st, CongestionState::High);
    }

    #[test]
    fn all_predictors_flag_sustained_rise() {
        let preds: Vec<Box<dyn Predictor>> = vec![
            Box::new(InstRtt::new(0.065)),
            Box::new(MovingAvgRtt::new(50, 0.065)),
            Box::new(EwmaRtt::srtt_099(0.065)),
            Box::new(VegasPredictor::new()),
            Box::new(Dual::new()),
            Box::new(Cim::new()),
            Box::new(Card::new()),
            Box::new(SyncTcpTrend::new()),
        ];
        for mut p in preds {
            let (flat, high) = drive(p.as_mut());
            assert_eq!(flat, CongestionState::Low, "{} false positive", p.name());
            assert_eq!(high, CongestionState::High, "{} false negative", p.name());
        }
    }

    #[test]
    fn vegas_backlog_formula() {
        let mut p = VegasPredictor::new();
        // base RTT 100 ms established first.
        p.on_sample(&sample(0.0, 0.100, 10.0));
        // rtt 150 ms with cwnd 10: diff = 10·(0.05/0.15) = 3.33 > 3 → High.
        let st = p.on_sample(&sample(1.0, 0.150, 10.0));
        assert_eq!(st, CongestionState::High);
        let mut p = VegasPredictor::new();
        p.on_sample(&sample(0.0, 0.100, 10.0));
        // rtt 140: diff = 10·(0.04/0.14) = 2.86 < 3 → Low.
        let st = p.on_sample(&sample(1.0, 0.140, 10.0));
        assert_eq!(st, CongestionState::Low);
    }

    #[test]
    fn dual_uses_midpoint() {
        let mut p = Dual::new();
        p.on_sample(&sample(0.0, 0.040, 1.0)); // min
        p.on_sample(&sample(0.1, 0.120, 1.0)); // max; mid = 0.08
        assert_eq!(p.on_sample(&sample(0.5, 0.070, 1.0)), CongestionState::Low);
        assert_eq!(p.on_sample(&sample(1.0, 0.090, 1.0)), CongestionState::High);
    }

    #[test]
    fn card_detects_gradient_sign() {
        let mut p = Card::new();
        p.on_sample(&sample(0.0, 0.050, 1.0));
        // Rising delay → High.
        assert_eq!(p.on_sample(&sample(0.1, 0.060, 1.0)), CongestionState::High);
        // Falling delay → Low.
        assert_eq!(p.on_sample(&sample(0.3, 0.050, 1.0)), CongestionState::Low);
    }

    #[test]
    fn tris_flags_flat_throughput_with_growing_window() {
        let mut p = TriS::new();
        // Window grows, throughput grows proportionally → Low (below knee).
        p.on_sample(&sample(0.0, 0.050, 10.0));
        assert_eq!(p.on_sample(&sample(0.1, 0.050, 12.0)), CongestionState::Low);
        // Window grows but RTT grows too — throughput flat → High.
        assert_eq!(
            p.on_sample(&sample(0.2, 0.060, 14.0)),
            CongestionState::High
        );
    }

    #[test]
    fn cim_short_vs_long() {
        let mut p = Cim::with_windows(2, 10, 1.05);
        for i in 0..10 {
            p.on_sample(&sample(i as f64, 0.050, 1.0));
        }
        // Two high recent samples push the short MA above the long.
        p.on_sample(&sample(10.0, 0.100, 1.0));
        assert_eq!(
            p.on_sample(&sample(11.0, 0.100, 1.0)),
            CongestionState::High
        );
    }

    #[test]
    fn sync_tcp_flags_monotone_owd_rise() {
        let mut p = SyncTcpTrend::new();
        // Nine rising OWD samples → monotone group medians → High.
        let mut st = CongestionState::Low;
        for i in 0..9 {
            st = p.on_sample(&sample(i as f64, 0.050 + 0.002 * i as f64, 1.0));
        }
        assert_eq!(st, CongestionState::High);
        // Flat OWDs → Low.
        let mut p = SyncTcpTrend::new();
        for i in 0..9 {
            st = p.on_sample(&sample(i as f64, 0.050, 1.0));
        }
        assert_eq!(st, CongestionState::Low);
    }

    #[test]
    fn sync_tcp_is_robust_to_single_spikes() {
        let mut p = SyncTcpTrend::new();
        // One spike inside otherwise flat delays must not flip the trend.
        let rtts = [0.05, 0.05, 0.05, 0.05, 0.30, 0.05, 0.05, 0.05, 0.05];
        let mut st = CongestionState::Low;
        for (i, &r) in rtts.iter().enumerate() {
            st = p.on_sample(&sample(i as f64, r, 1.0));
        }
        assert_eq!(st, CongestionState::Low);
    }

    #[test]
    fn reset_restores_initial_behaviour() {
        let mut p = VegasPredictor::new();
        p.on_sample(&sample(0.0, 0.050, 10.0));
        p.on_sample(&sample(1.0, 0.500, 10.0));
        p.reset();
        // After reset the first sample re-seeds base_rtt.
        assert_eq!(p.on_sample(&sample(2.0, 0.500, 10.0)), CongestionState::Low);
    }
}
