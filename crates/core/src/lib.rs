//! # pert-core — PERT: Probabilistic Early Response TCP
//!
//! Simulator-independent implementation of the algorithms from
//! *"Emulating AQM from End Hosts"* (Bhandarkar, Reddy, Zhang, Loguinov —
//! SIGCOMM 2007):
//!
//! * [`estimators`] — the RTT smoothers compared in §2.4 (instantaneous,
//!   windowed moving average, EWMA 7/8 and the adopted `srtt_0.99`);
//! * [`predictors`] — the end-host congestion predictors evaluated in
//!   Figure 3 (CARD, TRI-S, DUAL, Vegas, CIM, and the threshold family);
//! * [`response`] — the gentle-RED-shaped probabilistic response curve
//!   (Figure 5);
//! * [`pert`] — the per-flow PERT controller: `srtt_0.99` + probabilistic
//!   multiplicative decrease (35 %), at most once per RTT;
//! * [`pi`] — PERT/PI, the §6 variant that emulates the PI AQM controller
//!   on the queuing-delay estimate;
//! * [`rem`] — PERT/REM, demonstrating the paper's closing claim that the
//!   scheme generalizes to other AQM algorithms (here REM's
//!   price-and-exponential-marking law);
//! * [`buffer`] — the buffer-sizing relation (eq. 1) motivating the 35 %
//!   decrease factor.
//!
//! Everything here is pure computation over `f64` seconds: drive it from a
//! real TCP stack, a simulator (see the `pert-tcp` crate), or a recorded
//! trace.
//!
//! ## Quick start
//!
//! ```
//! use pert_core::{PertController, PertParams};
//!
//! let mut pert = PertController::new(PertParams::default(), 7);
//! let mut cwnd = 10.0_f64;
//! // per ACK:
//! if let Some(resp) = pert.on_ack(0.350, /*rtt=*/0.072) {
//!     cwnd *= 1.0 - resp.factor; // early multiplicative decrease
//! }
//! assert!(cwnd > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod buffer;
pub mod estimators;
pub mod pert;
pub mod pi;
pub mod predictors;
pub mod reference;
pub mod rem;
pub mod response;
pub mod telemetry;

pub use estimators::{Ewma, MinMax, MovingAverage};
pub use pert::{EarlyResponse, PertController, PertParams, PertStats};
pub use pi::{PertPiController, PertPiParams};
pub use predictors::{AckSample, CongestionState, Predictor};
pub use rem::{PertRemController, PertRemParams};
pub use response::ResponseCurve;
