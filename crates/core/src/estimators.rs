//! RTT smoothing primitives.
//!
//! §2.4 of the paper compares congestion signals built from the same raw
//! per-ACK RTT samples: the instantaneous signal, a windowed moving average
//! sized to the bottleneck buffer, and exponentially weighted moving
//! averages with history weights 7/8 (TCP's RTO filter) and 0.99 (the
//! signal PERT adopts, written `srtt_0.99`).

use std::collections::VecDeque;

/// Exponentially weighted moving average:
/// `s ← α·s + (1 − α)·x` with history weight `α`.
///
/// `alpha = 0.99` gives the paper's `srtt_0.99`; `alpha = 7/8` gives the
/// classic TCP RTO smoother.
#[derive(Clone, Debug)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Create with history weight `alpha ∈ [0, 1)`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ alpha < 1`.
    pub fn new(alpha: f64) -> Self {
        assert!((0.0..1.0).contains(&alpha), "alpha must be in [0,1)");
        Ewma { alpha, value: None }
    }

    /// The paper's `srtt_0.99` smoother.
    pub fn srtt_099() -> Self {
        Ewma::new(0.99)
    }

    /// TCP's classic RTO smoother (history weight 7/8).
    pub fn tcp_srtt() -> Self {
        Ewma::new(7.0 / 8.0)
    }

    /// Fold in a sample; the first sample initializes the filter.
    /// Returns the updated smoothed value.
    pub fn update(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(s) => self.alpha * s + (1.0 - self.alpha) * x,
        };
        self.value = Some(v);
        v
    }

    /// The current smoothed value, if any sample has been folded in.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// The history weight α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Forget all history.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

/// Fixed-window moving average over the last `window` samples
/// (the paper sizes it to the bottleneck buffer, 750 packets).
#[derive(Clone, Debug)]
pub struct MovingAverage {
    window: usize,
    buf: VecDeque<f64>,
    sum: f64,
}

impl MovingAverage {
    /// Create with the given window length.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        MovingAverage {
            window,
            buf: VecDeque::with_capacity(window),
            sum: 0.0,
        }
    }

    /// Fold in a sample and return the current mean.
    pub fn update(&mut self, x: f64) -> f64 {
        if self.buf.len() == self.window {
            self.sum -= self.buf.pop_front().expect("window non-empty");
        }
        self.buf.push_back(x);
        self.sum += x;
        self.mean().expect("just pushed")
    }

    /// Current mean, if any samples are present.
    pub fn mean(&self) -> Option<f64> {
        if self.buf.is_empty() {
            None
        } else {
            Some(self.sum / self.buf.len() as f64)
        }
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if no samples have been folded in.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Running minimum (the flow's propagation-delay estimate `P`, taken as the
/// minimum observed RTT) and maximum (used by the DUAL predictor).
#[derive(Clone, Copy, Debug, Default)]
pub struct MinMax {
    min: Option<f64>,
    max: Option<f64>,
}

impl MinMax {
    /// Create empty.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in a sample.
    pub fn update(&mut self, x: f64) {
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }

    /// Smallest sample seen.
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest sample seen.
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// Midpoint `(min + max)/2`, DUAL's threshold.
    pub fn midpoint(&self) -> Option<f64> {
        Some((self.min? + self.max?) / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_first_sample_initializes() {
        let mut e = Ewma::srtt_099();
        assert_eq!(e.value(), None);
        assert_eq!(e.update(0.1), 0.1);
        assert_eq!(e.value(), Some(0.1));
    }

    #[test]
    fn ewma_heavy_history_moves_slowly() {
        let mut e = Ewma::new(0.99);
        e.update(100.0);
        e.update(0.0);
        // One zero sample moves the estimate by only 1%.
        assert!((e.value().unwrap() - 99.0).abs() < 1e-12);
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut e = Ewma::new(0.9);
        e.update(0.0);
        for _ in 0..500 {
            e.update(5.0);
        }
        assert!((e.value().unwrap() - 5.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0,1)")]
    fn ewma_rejects_alpha_one() {
        let _ = Ewma::new(1.0);
    }

    #[test]
    fn moving_average_window_slides() {
        let mut m = MovingAverage::new(3);
        assert_eq!(m.update(1.0), 1.0);
        assert_eq!(m.update(2.0), 1.5);
        assert_eq!(m.update(3.0), 2.0);
        // Window full: 1.0 falls out.
        assert_eq!(m.update(4.0), 3.0);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn moving_average_handles_long_streams_stably() {
        let mut m = MovingAverage::new(100);
        for i in 0..10_000 {
            m.update((i % 7) as f64);
        }
        // Mean of 0..6 repeating is 3 (window is a multiple of 7 wrt drift);
        // just check it stays in range — guards against sum drift.
        let mean = m.mean().unwrap();
        assert!((0.0..=6.0).contains(&mean));
    }

    #[test]
    fn minmax_tracks_extremes_and_midpoint() {
        let mut mm = MinMax::new();
        assert_eq!(mm.midpoint(), None);
        for &x in &[0.05, 0.03, 0.09, 0.04] {
            mm.update(x);
        }
        assert_eq!(mm.min(), Some(0.03));
        assert_eq!(mm.max(), Some(0.09));
        assert!((mm.midpoint().unwrap() - 0.06).abs() < 1e-12);
    }

    #[test]
    fn srtt_tcp_weight() {
        assert!((Ewma::tcp_srtt().alpha() - 0.875).abs() < 1e-12);
    }
}
