//! Buffer-sizing relations (paper §3, eq. 1).
//!
//! Appenzeller et al. size router buffers at one bandwidth-delay product
//! because standard TCP halves its window on loss. For a general
//! multiplicative-decrease factor `f` the relation becomes
//! `B > f/(1 − f) · BDP`; PERT picks `f = 0.35` so that, with a one-BDP
//! buffer, early responses keep the standing queue under half capacity.

/// Minimum buffer (same unit as `bdp`) required for full utilization when
/// flows reduce their window by the factor `f` on congestion:
/// `B = f/(1 − f) · BDP` (paper eq. 1).
///
/// # Panics
/// Panics unless `0 < f < 1`.
pub fn min_buffer_for_decrease(f: f64, bdp: f64) -> f64 {
    assert!(f > 0.0 && f < 1.0, "decrease factor must be in (0,1)");
    assert!(bdp >= 0.0, "BDP must be non-negative");
    f / (1.0 - f) * bdp
}

/// The largest decrease factor `f` that keeps the required buffer at or
/// below `buffer` for a given `bdp`: inverse of
/// [`min_buffer_for_decrease`], `f = B/(B + BDP)`.
pub fn max_decrease_for_buffer(buffer: f64, bdp: f64) -> f64 {
    assert!(buffer >= 0.0 && bdp > 0.0);
    buffer / (buffer + bdp)
}

/// Bandwidth-delay product in packets for a link of `capacity_bps` and
/// round-trip time `rtt_secs`, with `pkt_bytes`-sized packets.
pub fn bdp_packets(capacity_bps: f64, rtt_secs: f64, pkt_bytes: f64) -> f64 {
    assert!(capacity_bps > 0.0 && rtt_secs > 0.0 && pkt_bytes > 0.0);
    capacity_bps * rtt_secs / (8.0 * pkt_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_decrease_needs_one_bdp() {
        // Standard TCP (f = 0.5) recovers the classic rule B = BDP.
        assert!((min_buffer_for_decrease(0.5, 100.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn pert_decrease_needs_half_bdp() {
        // f = 0.35 → B ≈ 0.538·BDP < BDP/2 is *not* quite true;
        // 0.35/0.65 = 0.538. The paper's point: with B = 1 BDP the queue
        // stays under 54% ≈ half of capacity.
        let b = min_buffer_for_decrease(0.35, 1.0);
        assert!((b - 0.35 / 0.65).abs() < 1e-12);
        assert!(b < 0.6);
    }

    #[test]
    fn inverse_relation_roundtrips() {
        let bdp = 250.0;
        for &f in &[0.1, 0.35, 0.5, 0.9] {
            let b = min_buffer_for_decrease(f, bdp);
            let f2 = max_decrease_for_buffer(b, bdp);
            assert!((f - f2).abs() < 1e-12);
        }
    }

    #[test]
    fn bdp_packets_example() {
        // 100 Mbps × 60 ms / (8 × 1000 B) = 750 packets — the paper's §2.2
        // queue size.
        let pkts = bdp_packets(100e6, 0.060, 1000.0);
        assert!((pkts - 750.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "decrease factor must be in (0,1)")]
    fn rejects_f_of_one() {
        let _ = min_buffer_for_decrease(1.0, 10.0);
    }
}
