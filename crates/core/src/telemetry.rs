//! Process-wide telemetry: signal taps, the metrics registry, profiler
//! spans, and the flight recorder.
//!
//! This mirrors the two-gate design of [`crate::audit`]:
//!
//! * a **compile-time feature** (`telemetry`, on by default in the
//!   simulator crates) gates the tap fields and record calls in hot
//!   code, so `--no-default-features` builds carry zero cost;
//! * a **runtime flag** ([`enabled`], default **off**) decides at
//!   construction time whether a [`Tap`] attaches. With the flag down
//!   every publish site is a branch on an `Option` that is `None`, and
//!   experiment output is byte-identical to a build without the
//!   feature. The `experiments` binary raises it with `--telemetry` or
//!   `--trace-out`.
//!
//! Four kinds of data flow through here:
//!
//! * **Records** — `(scope, series, key, t, value)` samples published
//!   by attached taps (PERT `srtt`, queue lengths, controller state).
//!   Every record lands in a bounded ring (the *flight recorder*,
//!   newest [`FLIGHT_CAP`] records); with [`set_full_trace`] they are
//!   additionally kept in full for `--trace-out`.
//! * **Metrics** — named counters/gauges/histograms in a global
//!   [`MetricsSet`]. All operations are commutative, so per-job flushes
//!   arriving in any thread order yield identical snapshots — the
//!   `--jobs 1` vs `--jobs N` determinism contract.
//! * **Spans** — coarse wall-clock phase timers ([`span`]) emitted as a
//!   Chrome-trace file. Wall-clock data never enters reports, so it is
//!   exempt from the determinism contract.
//! * **Flight dumps** — [`install_flight_dump_on_panic`] hooks the
//!   panic handler so an audit violation (which panics) or any scenario
//!   panic dumps the telemetry window preceding the failure as JSONL.
//!
//! ## Scopes and ordering
//!
//! Records carry a thread-local *scope* string, set by the experiment
//! runner to the job label via [`scoped`]. Within one scope all records
//! come from one deterministic, single-threaded simulation, so their
//! relative order is reproducible; across scopes the interleaving
//! depends on worker scheduling. [`write_trace_jsonl`] therefore
//! stable-sorts by `(scope, series, key)` before writing, which makes
//! the trace file itself identical at any `--jobs N`.
//!
//! ## Series naming
//!
//! `subsystem/signal`, keyed by an integer the publisher chooses (PERT:
//! controller seed; queues: link index; TCP: flow id). Current series
//! are listed in DESIGN.md §7.

pub use sim_stats::derive::{DeriveSet, DerivedSummary};
pub use sim_stats::metrics::{BucketHistogram, MetricValue, MetricsSet};

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static FULL_TRACE: AtomicBool = AtomicBool::new(false);

/// Default capacity of the flight-recorder ring: the newest records
/// kept for a post-mortem dump. Override with [`set_flight_cap`]
/// (`--flight-window N` on the experiments CLI).
pub const FLIGHT_CAP: usize = 65_536;

/// Flight-window bounds accepted by [`set_flight_cap`]. The lower bound
/// keeps a panic dump useful; the upper bound keeps the ring's memory
/// footprint sane (records are ~100 bytes).
pub const FLIGHT_CAP_MIN: usize = 64;
/// See [`FLIGHT_CAP_MIN`].
pub const FLIGHT_CAP_MAX: usize = 16_777_216;

static FLIGHT_CAP_VAR: AtomicUsize = AtomicUsize::new(FLIGHT_CAP);

/// The current flight-recorder ring capacity.
#[inline]
pub fn flight_cap() -> usize {
    FLIGHT_CAP_VAR.load(Ordering::Relaxed)
}

/// Resize the flight-recorder ring. Returns `Err` (and changes nothing)
/// outside [`FLIGHT_CAP_MIN`]`..=`[`FLIGHT_CAP_MAX`]. Shrinking trims
/// the oldest records immediately.
pub fn set_flight_cap(n: usize) -> Result<(), String> {
    if !(FLIGHT_CAP_MIN..=FLIGHT_CAP_MAX).contains(&n) {
        return Err(format!(
            "flight window {n} out of range [{FLIGHT_CAP_MIN}, {FLIGHT_CAP_MAX}]"
        ));
    }
    FLIGHT_CAP_VAR.store(n, Ordering::Relaxed);
    let mut buf = BUFFERS.lock().unwrap();
    while buf.ring.len() > n {
        buf.ring.pop_front();
    }
    Ok(())
}

/// True if telemetry is collecting. Defaults to **off**: unlike audits,
/// telemetry is pull-based tooling, and reports must stay byte-identical
/// unless explicitly requested otherwise.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn telemetry on or off process-wide. Like the audit flag, this must
/// be raised **before** the instrumented objects are built: taps attach
/// at construction time.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// When on, keep *every* record (not just the flight-recorder window)
/// for [`write_trace_jsonl`]. Implied by `--trace-out`.
pub fn set_full_trace(on: bool) {
    FULL_TRACE.store(on, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Scopes
// ---------------------------------------------------------------------

thread_local! {
    static SCOPE: RefCell<Option<Arc<str>>> = const { RefCell::new(None) };
    static SHARD: Cell<Option<u32>> = const { Cell::new(None) };
}

/// Set this thread's telemetry scope for the lifetime of the returned
/// guard (the previous scope is restored on drop). The experiment
/// runner scopes each job by its label.
pub fn scoped(label: &str) -> ScopeGuard {
    let prev = SCOPE.with(|s| s.borrow_mut().replace(Arc::from(label)));
    ScopeGuard { prev }
}

/// Restores the previous thread scope on drop. See [`scoped`].
#[derive(Debug)]
pub struct ScopeGuard {
    prev: Option<Arc<str>>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPE.with(|s| *s.borrow_mut() = self.prev.take());
    }
}

/// This thread's current telemetry scope (empty when unscoped). Exposed
/// so multi-threaded drivers (the shard workers) can capture the calling
/// thread's scope and re-establish it with [`scoped`] on their workers —
/// records published from a worker then group with the owning job.
pub fn current_scope() -> Arc<str> {
    // A shared `Arc<str>` instead of a fresh `String`: `record()` runs
    // per sample on the simulation hot path, and cloning the scope must
    // be a refcount bump, not an allocation.
    SCOPE
        .with(|s| s.borrow().clone())
        .unwrap_or_else(empty_scope)
}

fn empty_scope() -> Arc<str> {
    static EMPTY: OnceLock<Arc<str>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::from("")).clone()
}

/// Tag every record this thread publishes with the originating shard id
/// for the lifetime of the returned guard (the previous tag is restored
/// on drop). The shard workers establish this so flight dumps and traces
/// from a multi-shard run attribute each sample — a violation in a
/// 4-shard run names its shard instead of interleaving anonymously.
/// Monolithic runs never set it, and untagged records serialize exactly
/// as before, so single-shard trace bytes are unchanged.
pub fn shard_scoped(shard: u32) -> ShardScopeGuard {
    let prev = SHARD.with(|s| s.replace(Some(shard)));
    ShardScopeGuard { prev }
}

/// This thread's current shard tag (`None` outside shard workers).
pub fn current_shard() -> Option<u32> {
    SHARD.with(|s| s.get())
}

/// Restores the previous shard tag on drop. See [`shard_scoped`].
#[derive(Debug)]
pub struct ShardScopeGuard {
    prev: Option<u32>,
}

impl Drop for ShardScopeGuard {
    fn drop(&mut self) {
        SHARD.with(|s| s.set(self.prev));
    }
}

// ---------------------------------------------------------------------
// Records and taps
// ---------------------------------------------------------------------

/// One telemetry sample: series `series[key]` had `value` at simulated
/// time `t` (seconds), published from job `scope`.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Publishing job's label (runner-assigned; empty outside a job).
    /// Shared, not owned: every record from one job points at the same
    /// allocation.
    pub scope: Arc<str>,
    /// Series name, `subsystem/signal`.
    pub series: &'static str,
    /// Publisher-chosen instance key (seed, link index, flow id).
    pub key: u64,
    /// Simulated time, seconds.
    pub t: f64,
    /// Sample value.
    pub value: f64,
    /// Originating shard id when published from a shard worker (see
    /// [`shard_scoped`]); `None` on monolithic runs.
    pub shard: Option<u32>,
}

struct Buffers {
    ring: VecDeque<Record>,
    full: Vec<Record>,
}

static BUFFERS: Mutex<Buffers> = Mutex::new(Buffers {
    ring: VecDeque::new(),
    full: Vec::new(),
});

/// Publish one sample. Prefer holding a [`Tap`]: attachment is the
/// runtime gate, so detached code paths never reach this.
pub fn record(series: &'static str, key: u64, t: f64, value: f64) {
    let rec = Record {
        scope: current_scope(),
        series,
        key,
        t,
        value,
        shard: current_shard(),
    };
    if DERIVE_ON.load(Ordering::Relaxed) {
        if let Some(d) = DERIVE.lock().unwrap().as_mut() {
            d.ingest(&rec.scope, rec.series, rec.key, rec.t, rec.value);
        }
    }
    let cap = flight_cap();
    let mut buf = BUFFERS.lock().unwrap();
    while buf.ring.len() >= cap {
        buf.ring.pop_front();
    }
    if FULL_TRACE.load(Ordering::Relaxed) {
        buf.full.push(rec.clone());
    }
    buf.ring.push_back(rec);
}

/// A handle a publisher holds when telemetry was enabled at its
/// construction. Holding `Option<Tap>` (or just the key) and branching
/// on it is the whole runtime cost when detached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tap {
    series: &'static str,
    key: u64,
}

impl Tap {
    /// Attach a tap for `series[key]`, or `None` when telemetry is off.
    pub fn attach(series: &'static str, key: u64) -> Option<Tap> {
        enabled().then_some(Tap { series, key })
    }

    /// Publish one sample on this tap's series.
    pub fn record(&self, t: f64, value: f64) {
        record(self.series, self.key, t, value);
    }

    /// The instance key this tap was attached with.
    pub fn key(&self) -> u64 {
        self.key
    }
}

/// The newest records (up to [`FLIGHT_CAP`]), oldest first, in arrival
/// order — the window a post-mortem wants.
pub fn flight_snapshot() -> Vec<Record> {
    let buf = BUFFERS.lock().unwrap();
    buf.ring.iter().cloned().collect()
}

/// All records collected under [`set_full_trace`], stable-sorted by
/// `(scope, series, key)` so the output is deterministic at any worker
/// count (within a group, records come from one single-threaded job and
/// keep their publication order).
pub fn trace_snapshot_sorted() -> Vec<Record> {
    let buf = BUFFERS.lock().unwrap();
    let mut out = buf.full.clone();
    drop(buf);
    out.sort_by(|a, b| (&*a.scope, a.series, a.key).cmp(&(&*b.scope, b.series, b.key)));
    out
}

// ---------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------

static METRICS: Mutex<MetricsSet> = Mutex::new(MetricsSet::new());

/// Bucket edges for RTT-class histograms, nanoseconds:
/// 1/2/5-stepped from 1 ms to 5 s, plus overflow.
pub const RTT_EDGES_NS: [u64; 12] = [
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    200_000_000,
    500_000_000,
    1_000_000_000,
    2_000_000_000,
    5_000_000_000,
];

/// Add `n` to the global counter `name`. Callers batch per simulation
/// and flush once (typically on drop) — never per event.
pub fn counter_add(name: &str, n: u64) {
    if n > 0 {
        METRICS.lock().unwrap().counter_add(name, n);
    }
}

/// Raise the global gauge `name` to at least `v`.
pub fn gauge_max(name: &str, v: u64) {
    METRICS.lock().unwrap().gauge_max(name, v);
}

/// Record one observation into the global histogram `name`.
pub fn histogram_observe(name: &str, edges: &[u64], value: u64) {
    METRICS
        .lock()
        .unwrap()
        .histogram_observe(name, edges, value);
}

/// Merge a locally accumulated histogram into the global one.
pub fn histogram_merge(name: &str, hist: &BucketHistogram) {
    if hist.total > 0 {
        METRICS.lock().unwrap().histogram_merge(name, hist);
    }
}

/// A point-in-time copy of the global metrics. Use
/// [`MetricsSet::since`] on two snapshots for per-target deltas.
pub fn metrics_snapshot() -> MetricsSet {
    METRICS.lock().unwrap().clone()
}

// ---------------------------------------------------------------------
// Derived metrics
// ---------------------------------------------------------------------

static DERIVE_ON: AtomicBool = AtomicBool::new(false);
static DERIVE: Mutex<Option<DeriveSet>> = Mutex::new(None);

/// Start (or restart) online derivation: every subsequent [`record`]
/// is also fed through a fresh [`DeriveSet`]. The experiments binary
/// calls this per target so each report gets its own derived block.
pub fn derive_reset() {
    *DERIVE.lock().unwrap() = Some(DeriveSet::new());
    DERIVE_ON.store(true, Ordering::Relaxed);
}

/// Stop online derivation and drop the accumulated state.
pub fn derive_clear() {
    DERIVE_ON.store(false, Ordering::Relaxed);
    *DERIVE.lock().unwrap() = None;
}

/// Summarize the records derived since [`derive_reset`], or `None`
/// when derivation is not running. The summary is integer-only and
/// order-independent, so it is byte-identical at any worker count.
pub fn derive_summary() -> Option<DerivedSummary> {
    DERIVE.lock().unwrap().as_ref().map(DeriveSet::summary)
}

// ---------------------------------------------------------------------
// Progress (stderr-only; never part of deterministic output)
// ---------------------------------------------------------------------

static PROGRESS_ON: AtomicBool = AtomicBool::new(false);
static PROGRESS_EVENTS: AtomicU64 = AtomicU64::new(0);
static PROGRESS_SIM_NS: AtomicU64 = AtomicU64::new(0);
static PROGRESS_JOBS_DONE: AtomicU64 = AtomicU64::new(0);
static PROGRESS_JOBS_TOTAL: AtomicU64 = AtomicU64::new(0);

/// Turn the progress counters on or off. Publishers check this once
/// per batch, so the cost with the flag down is one relaxed load.
pub fn progress_set_enabled(on: bool) {
    PROGRESS_ON.store(on, Ordering::Relaxed);
}

/// True when progress counters are being collected.
#[inline]
pub fn progress_enabled() -> bool {
    PROGRESS_ON.load(Ordering::Relaxed)
}

/// Add a batch of processed events and advanced simulated time.
/// Publishers batch (the sim loop flushes every few thousand events) —
/// never call this per event.
pub fn progress_add(events: u64, sim_ns: u64) {
    PROGRESS_EVENTS.fetch_add(events, Ordering::Relaxed);
    PROGRESS_SIM_NS.fetch_add(sim_ns, Ordering::Relaxed);
}

/// Reset the counters and set the total job count for the coming run.
pub fn progress_start(total_jobs: u64) {
    PROGRESS_EVENTS.store(0, Ordering::Relaxed);
    PROGRESS_SIM_NS.store(0, Ordering::Relaxed);
    PROGRESS_JOBS_DONE.store(0, Ordering::Relaxed);
    PROGRESS_JOBS_TOTAL.store(total_jobs, Ordering::Relaxed);
}

/// Mark one job complete.
pub fn progress_job_done() {
    PROGRESS_JOBS_DONE.fetch_add(1, Ordering::Relaxed);
}

/// Snapshot `(events, sim_ns, jobs_done, jobs_total)`.
pub fn progress_snapshot() -> (u64, u64, u64, u64) {
    (
        PROGRESS_EVENTS.load(Ordering::Relaxed),
        PROGRESS_SIM_NS.load(Ordering::Relaxed),
        PROGRESS_JOBS_DONE.load(Ordering::Relaxed),
        PROGRESS_JOBS_TOTAL.load(Ordering::Relaxed),
    )
}

// ---------------------------------------------------------------------
// Profiler spans
// ---------------------------------------------------------------------

/// One closed wall-clock phase, microseconds relative to process start.
#[derive(Clone, Debug)]
pub struct Span {
    /// Phase name (e.g. `sim/run_until`, `job/fig6 b=10`).
    pub name: String,
    /// Scope active when the span opened.
    pub scope: String,
    /// Small per-thread id for trace lanes.
    pub tid: u64,
    /// Start, µs since process epoch.
    pub start_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
}

static SPANS: Mutex<Vec<Span>> = Mutex::new(Vec::new());

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Open a wall-clock span, closed when the guard drops. `None` when
/// telemetry is off, so the idiom is `let _span = telemetry::span(..);`.
pub fn span(name: impl Into<String>) -> Option<SpanGuard> {
    if !enabled() {
        return None;
    }
    Some(SpanGuard {
        name: name.into(),
        started: Instant::now(),
    })
}

/// Closes its [`span`] on drop.
#[derive(Debug)]
pub struct SpanGuard {
    name: String,
    started: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let start_us = self.started.saturating_duration_since(epoch()).as_micros() as u64;
        let dur_us = self.started.elapsed().as_micros() as u64;
        SPANS.lock().unwrap().push(Span {
            name: std::mem::take(&mut self.name),
            scope: current_scope().to_string(),
            tid: thread_id(),
            start_us,
            dur_us,
        });
    }
}

/// Record a pre-measured wall-clock phase (ending now) as a closed span
/// — for durations accumulated across many short operations, like
/// per-packet queue calls, where a guard per call would drown the trace.
pub fn span_closed(name: impl Into<String>, dur_us: u64) {
    if !enabled() {
        return;
    }
    let end_us = epoch().elapsed().as_micros() as u64;
    SPANS.lock().unwrap().push(Span {
        name: name.into(),
        scope: current_scope().to_string(),
        tid: thread_id(),
        start_us: end_us.saturating_sub(dur_us),
        dur_us,
    });
}

/// All closed spans so far.
pub fn spans_snapshot() -> Vec<Span> {
    SPANS.lock().unwrap().clone()
}

// ---------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

fn write_records_jsonl(path: &Path, records: &[Record]) -> io::Result<usize> {
    let mut w = BufWriter::new(File::create(path)?);
    for r in records {
        // The shard tag is emitted only when present, so traces from
        // monolithic runs stay byte-identical to pre-tagging output.
        match r.shard {
            Some(sh) => writeln!(
                w,
                "{{\"scope\":\"{}\",\"series\":\"{}\",\"key\":{},\"t\":{},\"v\":{},\"shard\":{sh}}}",
                json_escape(&r.scope),
                json_escape(r.series),
                r.key,
                json_num(r.t),
                json_num(r.value),
            )?,
            None => writeln!(
                w,
                "{{\"scope\":\"{}\",\"series\":\"{}\",\"key\":{},\"t\":{},\"v\":{}}}",
                json_escape(&r.scope),
                json_escape(r.series),
                r.key,
                json_num(r.t),
                json_num(r.value),
            )?,
        }
    }
    w.flush()?;
    Ok(records.len())
}

/// Dump the flight-recorder window (newest [`FLIGHT_CAP`] records,
/// arrival order) as JSONL. Returns the record count.
pub fn write_flight_jsonl(path: &Path) -> io::Result<usize> {
    write_records_jsonl(path, &flight_snapshot())
}

/// Write the full trace (requires [`set_full_trace`]) as JSONL, sorted
/// for determinism as described on [`trace_snapshot_sorted`]. Returns
/// the record count.
pub fn write_trace_jsonl(path: &Path) -> io::Result<usize> {
    write_records_jsonl(path, &trace_snapshot_sorted())
}

/// Write all closed spans as a Chrome-trace-format file (load in
/// `chrome://tracing` or Perfetto). Returns the span count.
pub fn write_chrome_trace(path: &Path) -> io::Result<usize> {
    let spans = spans_snapshot();
    let mut w = BufWriter::new(File::create(path)?);
    write!(w, "{{\"traceEvents\":[")?;
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            write!(w, ",")?;
        }
        write!(
            w,
            "{{\"name\":\"{}\",\"cat\":\"pert\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{},\"args\":{{\"scope\":\"{}\"}}}}",
            json_escape(&s.name),
            s.start_us,
            s.dur_us,
            s.tid,
            json_escape(&s.scope),
        )?;
    }
    write!(w, "]}}")?;
    w.flush()?;
    Ok(spans.len())
}

/// Chain a panic hook that dumps the flight recorder to `path` before
/// the default handler runs, so audit violations (which panic) and
/// scenario panics leave the telemetry window that preceded them on
/// disk. Installs at most once per process; later calls are no-ops.
pub fn install_flight_dump_on_panic(path: PathBuf) {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(move || {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            match write_flight_jsonl(&path) {
                Ok(n) => eprintln!("flight recorder: dumped {n} records to {}", path.display()),
                Err(e) => eprintln!("flight recorder: dump to {} failed: {e}", path.display()),
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: as with the audit flag, the enabled switch is process-global
    // and tests share one process. Tests that need collection on flip it
    // and never flip it back off mid-run would race other tests — so all
    // tests here work with the flag *up* (extra records from concurrent
    // tests are tolerated by filtering on unique series names), and no
    // test ever lowers it.

    #[test]
    fn tap_requires_enabled_flag() {
        // Runs first in lexical order? No guarantee — so assert only the
        // off-state behaviour via a fresh look when the flag happens to
        // be down, and the on-state behaviour after raising it.
        set_enabled(true);
        let tap = Tap::attach("test/tap_gate", 9).expect("enabled => attached");
        tap.record(1.0, 2.0);
        let found = flight_snapshot()
            .iter()
            .any(|r| r.series == "test/tap_gate" && r.key == 9 && r.value == 2.0);
        assert!(found);
    }

    #[test]
    fn full_trace_sorted_deterministically() {
        set_enabled(true);
        set_full_trace(true);
        {
            let _s = scoped("job-b");
            record("test/sorted", 1, 0.5, 5.0);
        }
        {
            let _s = scoped("job-a");
            record("test/sorted", 1, 0.25, 2.5);
            record("test/sorted", 1, 0.75, 7.5);
        }
        let trace: Vec<Record> = trace_snapshot_sorted()
            .into_iter()
            .filter(|r| r.series == "test/sorted")
            .collect();
        let scopes: Vec<&str> = trace.iter().map(|r| &*r.scope).collect();
        assert_eq!(scopes, vec!["job-a", "job-a", "job-b"]);
        // Within a scope, publication order survives the stable sort.
        assert_eq!(trace[0].t, 0.25);
        assert_eq!(trace[1].t, 0.75);
    }

    #[test]
    fn scope_guard_restores_previous() {
        let _outer = scoped("outer");
        assert_eq!(&*current_scope(), "outer");
        {
            let _inner = scoped("inner");
            assert_eq!(&*current_scope(), "inner");
        }
        assert_eq!(&*current_scope(), "outer");
    }

    #[test]
    fn metrics_flow_through_registry() {
        set_enabled(true);
        let before = metrics_snapshot();
        counter_add("test/ctr", 3);
        counter_add("test/ctr", 4);
        gauge_max("test/gauge", 5);
        gauge_max("test/gauge", 2);
        histogram_observe("test/hist", &RTT_EDGES_NS, 1_500_000);
        let delta = metrics_snapshot().since(&before);
        assert_eq!(delta.get("test/ctr"), Some(&MetricValue::Counter(7)));
        assert_eq!(delta.get("test/gauge"), Some(&MetricValue::Gauge(5)));
        match delta.get("test/hist") {
            Some(MetricValue::Histogram(h)) => assert!(h.total >= 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn spans_close_on_drop() {
        set_enabled(true);
        {
            let _g = span("test/span_close");
        }
        assert!(spans_snapshot().iter().any(|s| s.name == "test/span_close"));
    }

    #[test]
    fn span_closed_records_premeasured_duration() {
        set_enabled(true);
        span_closed("test/span_closed", 1234);
        let s = spans_snapshot()
            .into_iter()
            .find(|s| s.name == "test/span_closed")
            .expect("span recorded");
        assert_eq!(s.dur_us, 1234);
    }

    #[test]
    fn writers_emit_valid_lines() {
        set_enabled(true);
        set_full_trace(true);
        record("test/writer", 3, 1.5, 0.25);
        let dir = std::env::temp_dir();
        let flight = dir.join("pert_test_flight.jsonl");
        let trace = dir.join("pert_test_trace.jsonl");
        let chrome = dir.join("pert_test_chrome.json");
        assert!(write_flight_jsonl(&flight).unwrap() >= 1);
        assert!(write_trace_jsonl(&trace).unwrap() >= 1);
        {
            let _g = span("test/writer_span");
        }
        assert!(write_chrome_trace(&chrome).unwrap() >= 1);
        let line = std::fs::read_to_string(&trace)
            .unwrap()
            .lines()
            .find(|l| l.contains("\"series\":\"test/writer\""))
            .map(str::to_owned)
            .expect("record present");
        assert!(line.contains("\"key\":3"));
        assert!(line.contains("\"t\":1.5"));
        assert!(line.contains("\"v\":0.25"));
        let chrome_text = std::fs::read_to_string(&chrome).unwrap();
        assert!(chrome_text.starts_with("{\"traceEvents\":["));
        assert!(chrome_text.ends_with("]}"));
        for p in [flight, trace, chrome] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn panic_dump_leaves_flight_window_on_disk() {
        set_enabled(true);
        record("test/panic_dump", 7, 2.0, 42.0);
        let path = std::env::temp_dir().join("pert_test_panic_flight.jsonl");
        let _ = std::fs::remove_file(&path);
        install_flight_dump_on_panic(path.clone());
        // An audit violation panics; any panic must leave the preceding
        // telemetry window on disk before the default handler runs.
        let _ = std::panic::catch_unwind(|| panic!("induced violation"));
        let body = std::fs::read_to_string(&path).expect("dump written");
        assert!(body.contains("\"series\":\"test/panic_dump\""));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn flight_cap_bounds_are_enforced() {
        assert!(set_flight_cap(0).is_err());
        assert!(set_flight_cap(FLIGHT_CAP_MIN - 1).is_err());
        assert!(set_flight_cap(FLIGHT_CAP_MAX + 1).is_err());
        // In-range values apply; restore the default afterwards so the
        // ring keeps its documented size for other tests.
        assert!(set_flight_cap(FLIGHT_CAP_MIN).is_ok());
        assert_eq!(flight_cap(), FLIGHT_CAP_MIN);
        assert!(set_flight_cap(FLIGHT_CAP).is_ok());
        assert_eq!(flight_cap(), FLIGHT_CAP);
    }

    #[test]
    fn derive_hook_feeds_recorded_samples() {
        set_enabled(true);
        derive_reset();
        // Series no other test in this process emits, so the counts
        // below are exact even with tests running concurrently.
        record("queue/final_offered", 0, 0.0, 400.0);
        record("queue/final_dropped", 0, 0.0, 10.0);
        record("tcp/acked_final", 1, 0.0, 30.0);
        record("tcp/acked_final", 2, 0.0, 30.0);
        let s = derive_summary().expect("derivation running");
        let l = s.loss.expect("loss ingested");
        assert_eq!(l.offered, 400);
        assert_eq!(l.dropped, 10);
        assert_eq!(l.drop_bp, 250);
        let f = s.fairness.expect("fairness ingested");
        assert_eq!(f.flows, 2);
        assert_eq!(f.jain_max_milli, 1_000);
        derive_clear();
        assert!(derive_summary().is_none());
    }

    #[test]
    fn progress_counters_accumulate() {
        progress_set_enabled(true);
        progress_start(4);
        progress_add(1_000, 500_000);
        progress_add(500, 250_000);
        progress_job_done();
        let (events, sim_ns, done, total) = progress_snapshot();
        assert!(events >= 1_500);
        assert!(sim_ns >= 750_000);
        assert!(done >= 1);
        assert_eq!(total, 4);
        progress_set_enabled(false);
    }

    #[test]
    fn shard_tag_flows_into_records_and_dumps() {
        set_enabled(true);
        {
            let _g = shard_scoped(3);
            assert_eq!(current_shard(), Some(3));
            record("test/shard_tag", 1, 0.0, 1.0);
        }
        assert_eq!(current_shard(), None);
        record("test/shard_tag", 2, 0.0, 2.0);
        let recs: Vec<Record> = flight_snapshot()
            .into_iter()
            .filter(|r| r.series == "test/shard_tag")
            .collect();
        assert!(recs.iter().any(|r| r.key == 1 && r.shard == Some(3)));
        assert!(recs.iter().any(|r| r.key == 2 && r.shard.is_none()));
        let path = std::env::temp_dir().join("pert_test_shard_tag.jsonl");
        write_flight_jsonl(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        let tagged = body
            .lines()
            .find(|l| l.contains("\"series\":\"test/shard_tag\",\"key\":1"))
            .expect("tagged record present");
        assert!(tagged.trim_end().ends_with("\"shard\":3}"));
        let untagged = body
            .lines()
            .find(|l| l.contains("\"series\":\"test/shard_tag\",\"key\":2"))
            .expect("untagged record present");
        assert!(!untagged.contains("\"shard\":"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(0.5), "0.5");
    }
}
