//! PERT/PI: emulating the PI AQM controller at the end host (paper §6).
//!
//! Instead of the gentle-RED response curve, the response probability is
//! produced by a discretized proportional-integral controller acting on the
//! queuing-delay estimate:
//!
//! ```text
//! p(k) = p(k−1) + γ·(T_q(k) − T_q*) − β·(T_q(k−1) − T_q*)
//! γ = K/m + K·δ/2,   β = K/m − K·δ/2
//! ```
//!
//! obtained from `C_PI(s) = K (1 + s/m) / s` by the bilinear transform with
//! sampling interval `δ` (paper eq. 16–19; note eq. 19 in the paper swaps
//! the `β`/`γ` symbols relative to its own definitions — we implement the
//! standard stable form with the larger coefficient on the current error).
//!
//! Theorem 2 gives the design rule for `m` and `K`; because PERT senses
//! queuing *delay* rather than queue *length*, the plant gain carries `C²`
//! rather than RED's `C³` (§6, discussion after Theorem 2).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of the PERT/PI controller.
#[derive(Clone, Copy, Debug)]
pub struct PertPiParams {
    /// Coefficient on the current delay error (γ).
    pub gamma: f64,
    /// Coefficient on the previous delay error (β).
    pub beta: f64,
    /// Queuing-delay setpoint `T_q*` in seconds (paper §6.1 uses 3 ms).
    pub target_delay: f64,
    /// Smoothed-RTT history weight (the same `srtt_0.99` signal is used
    /// for delay measurement, §6.1).
    pub srtt_weight: f64,
    /// Multiplicative window-decrease factor on early response.
    pub decrease_factor: f64,
}

impl PertPiParams {
    /// Design rule of Theorem 2: given the link capacity `c_pps`
    /// (packets/second), a lower bound `n_min` on the number of flows, an
    /// upper bound `r_max` (seconds) on RTT, a representative stationary
    /// RTT `r_star`, and sampling interval `delta` (seconds — roughly the
    /// inter-ACK time `N/C`):
    ///
    /// ```text
    /// m = 2·n_min / (r_max² · c_pps)
    /// K = m · sqrt((r_star·m)² + 1) / (r_max³·c_pps² / (2·n_min)²)
    /// ```
    pub fn design(
        c_pps: f64,
        n_min: f64,
        r_max: f64,
        r_star: f64,
        delta: f64,
        target_delay: f64,
    ) -> Self {
        assert!(c_pps > 0.0 && n_min > 0.0 && r_max > 0.0 && delta > 0.0);
        let m = 2.0 * n_min / (r_max * r_max * c_pps);
        let plant = r_max.powi(3) * c_pps.powi(2) / (2.0 * n_min).powi(2);
        let k = m * ((r_star * m).powi(2) + 1.0).sqrt() / plant;
        PertPiParams {
            gamma: k / m + k * delta / 2.0,
            beta: k / m - k * delta / 2.0,
            target_delay,
            srtt_weight: 0.99,
            decrease_factor: 0.35,
        }
    }

    /// §6.1's pragmatic parameterization: take a router PI's queue-length
    /// coefficients `(a, b)` (probability per packet of queue error) and
    /// multiply by the link capacity in packets/second to convert them to
    /// per-second-of-delay coefficients.
    pub fn from_router_pi(a: f64, b: f64, c_pps: f64, target_delay: f64) -> Self {
        assert!(a > b && b > 0.0, "need a > b > 0");
        assert!(c_pps > 0.0);
        PertPiParams {
            gamma: a * c_pps,
            beta: b * c_pps,
            target_delay,
            srtt_weight: 0.99,
            decrease_factor: 0.35,
        }
    }

    fn validate(&self) {
        assert!(
            self.gamma > self.beta && self.beta > 0.0,
            "stability requires gamma > beta > 0"
        );
        assert!(self.target_delay >= 0.0);
        assert!((0.0..1.0).contains(&self.srtt_weight));
        assert!(self.decrease_factor > 0.0 && self.decrease_factor < 1.0);
    }
}

/// The per-flow PERT/PI state machine. Drive with [`PertPiController::on_ack`].
#[derive(Clone, Debug)]
pub struct PertPiController {
    params: PertPiParams,
    srtt: Option<f64>,
    min_rtt: Option<f64>,
    /// Current response probability (the PI state).
    p: f64,
    /// Previous delay error.
    prev_err: f64,
    hold_until: f64,
    rng: SmallRng,
    /// Early responses taken.
    pub early_responses: u64,
}

impl PertPiController {
    /// Create with `params`; coin flips derive from `seed`.
    pub fn new(params: PertPiParams, seed: u64) -> Self {
        params.validate();
        PertPiController {
            params,
            srtt: None,
            min_rtt: None,
            p: 0.0,
            prev_err: 0.0,
            hold_until: 0.0,
            rng: SmallRng::seed_from_u64(seed ^ 0x9121_77e5),
            early_responses: 0,
        }
    }

    /// Update the RTT filters and PI state without making a response
    /// decision (used for samples arriving during loss recovery).
    pub fn observe(&mut self, rtt: f64) {
        assert!(rtt > 0.0 && rtt.is_finite(), "invalid RTT sample {rtt}");
        let w = self.params.srtt_weight;
        let srtt = match self.srtt {
            None => rtt,
            Some(s) => w * s + (1.0 - w) * rtt,
        };
        self.srtt = Some(srtt);
        self.min_rtt = Some(self.min_rtt.map_or(rtt, |m| m.min(rtt)));
        let qd = (srtt - self.min_rtt.expect("set")).max(0.0);

        // PI update on the delay error.
        let err = qd - self.params.target_delay;
        self.p =
            (self.p + self.params.gamma * err - self.params.beta * self.prev_err).clamp(0.0, 1.0);
        self.prev_err = err;
    }

    /// Feed an RTT sample at `now` seconds; returns the decrease factor if
    /// the sender should reduce its window (at most once per RTT).
    pub fn on_ack(&mut self, now: f64, rtt: f64) -> Option<f64> {
        self.observe(rtt);
        if self.p <= 0.0 || self.rng.gen::<f64>() >= self.p {
            return None;
        }
        if now < self.hold_until {
            return None;
        }
        self.hold_until = now + self.srtt.unwrap_or(rtt);
        self.early_responses += 1;
        Some(self.params.decrease_factor)
    }

    /// Current response probability (PI state).
    pub fn probability(&self) -> f64 {
        self.p
    }

    /// Current queuing-delay estimate, seconds.
    pub fn queuing_delay(&self) -> Option<f64> {
        Some((self.srtt? - self.min_rtt?).max(0.0))
    }

    /// The configured parameters.
    pub fn params(&self) -> &PertPiParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> PertPiParams {
        // Router-PI style coefficients scaled for a 12500 pps link.
        PertPiParams::from_router_pi(1.822e-5, 1.816e-5, 12_500.0, 0.003)
    }

    #[test]
    fn probability_integrates_up_under_excess_delay() {
        let mut c = PertPiController::new(params(), 1);
        c.on_ack(0.0, 0.060);
        for i in 1..5_000 {
            c.on_ack(i as f64 * 0.001, 0.080); // 20 ms queuing delay ≫ 3 ms
        }
        assert!(c.probability() > 0.0, "p = {}", c.probability());
    }

    #[test]
    fn probability_unwinds_below_target() {
        let mut c = PertPiController::new(params(), 1);
        c.on_ack(0.0, 0.060);
        for i in 1..5_000 {
            c.on_ack(i as f64 * 0.001, 0.090);
        }
        let high = c.probability();
        // srtt is sticky (0.99); give it time at base RTT to fall below
        // target and the integrator to unwind.
        for i in 5_000..40_000 {
            c.on_ack(i as f64 * 0.001, 0.060);
        }
        assert!(c.probability() < high);
    }

    #[test]
    fn probability_stays_clamped() {
        let mut c = PertPiController::new(params(), 1);
        for i in 0..100_000 {
            c.on_ack(i as f64 * 0.0001, if i == 0 { 0.010 } else { 1.0 });
            let p = c.probability();
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn once_per_rtt_limit_holds() {
        let mut c = PertPiController::new(params(), 5);
        c.on_ack(0.0, 0.050);
        let mut last: Option<f64> = None;
        let mut now = 0.0;
        for _ in 0..200_000 {
            now += 0.0001;
            if c.on_ack(now, 0.500).is_some() {
                if let Some(prev) = last {
                    assert!(now - prev >= 0.05, "two responses within an RTT");
                }
                last = Some(now);
            }
        }
        assert!(c.early_responses > 0);
    }

    #[test]
    fn design_rule_gives_stable_coefficients() {
        // 10 Mbps / 1250-byte packets = 1000 pps, 5 flows, R ≤ 240 ms.
        let p = PertPiParams::design(1000.0, 5.0, 0.24, 0.2, 0.005, 0.003);
        assert!(p.gamma > p.beta && p.beta > 0.0);
    }

    #[test]
    #[should_panic(expected = "need a > b > 0")]
    fn from_router_rejects_bad_coeffs() {
        let _ = PertPiParams::from_router_pi(1.0e-5, 2.0e-5, 1000.0, 0.003);
    }
}
