//! Process-wide audit registry: the runtime switch, check counters, and
//! the violation reporter shared by every crate's invariant checks.
//!
//! The audit layer has two gates:
//!
//! * a **compile-time feature** (`audit`, on by default) — crates gate
//!   their shadow state and check code behind it, so
//!   `--no-default-features` builds carry literally zero audit cost;
//! * a **runtime flag** ([`enabled`]) that defaults to on in debug/test
//!   builds (`cfg!(debug_assertions)`) and off in release. The
//!   `experiments` binary flips it on with `--audit`.
//!
//! Audited objects (queue ledgers, differential oracles, scoreboard
//! shadows) attach their shadow state **at construction time** when the
//! flag is set, so the flag must be raised before simulations are built.
//! Checks count themselves into the global counters below; a failed check
//! calls [`violation`], which records the violation and panics with a
//! reproducer (the caller embeds seed, event index, and a state dump).
//!
//! Counters are process-global atomics so the parallel experiment runner
//! can aggregate across worker threads; hot paths batch locally and flush
//! on drop rather than touching the atomics per check.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(cfg!(debug_assertions));

static QUEUE_CHECKS: AtomicU64 = AtomicU64::new(0);
static ORACLE_CHECKS: AtomicU64 = AtomicU64::new(0);
static TCP_CHECKS: AtomicU64 = AtomicU64::new(0);
static EVENT_CHECKS: AtomicU64 = AtomicU64::new(0);
static CALENDAR_CHECKS: AtomicU64 = AtomicU64::new(0);
static VIOLATIONS: AtomicU64 = AtomicU64::new(0);

/// True if audits should run. Defaults to `cfg!(debug_assertions)`, so
/// `cargo test` audits everything while release experiment runs stay
/// fast unless `--audit` is given.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn auditing on or off process-wide. Must be called before the
/// audited objects (simulators, controllers, scoreboards) are built:
/// shadow state attaches at construction time.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Record `n` queue-ledger checks (conservation, byte accounting,
/// integral consistency).
pub fn count_queue_checks(n: u64) {
    QUEUE_CHECKS.fetch_add(n, Ordering::Relaxed);
}

/// Record `n` differential-oracle comparisons (RED/PI/REM/PERT shadows).
pub fn count_oracle_checks(n: u64) {
    ORACLE_CHECKS.fetch_add(n, Ordering::Relaxed);
}

/// Record `n` TCP sequence-space checks (scoreboard, interval set,
/// delivery-order invariants).
pub fn count_tcp_checks(n: u64) {
    TCP_CHECKS.fetch_add(n, Ordering::Relaxed);
}

/// Record `n` event-loop checks (time monotonicity).
pub fn count_event_checks(n: u64) {
    EVENT_CHECKS.fetch_add(n, Ordering::Relaxed);
}

/// Record `n` calendar-shadow comparisons (timing wheel vs. reference
/// heap `(time, seq)` pop equivalence).
pub fn count_calendar_checks(n: u64) {
    CALENDAR_CHECKS.fetch_add(n, Ordering::Relaxed);
}

/// A point-in-time reading of the global audit counters. Subtract two
/// snapshots ([`AuditSnapshot::since`]) to report per-target activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AuditSnapshot {
    /// Queue-ledger checks run.
    pub queue_checks: u64,
    /// Differential-oracle comparisons run.
    pub oracle_checks: u64,
    /// TCP sequence-space checks run.
    pub tcp_checks: u64,
    /// Event-loop checks run.
    pub event_checks: u64,
    /// Calendar-shadow (wheel vs. heap) comparisons run.
    pub calendar_checks: u64,
    /// Violations recorded (each also panics, so a finished run always
    /// reports zero — the counter exists for reporting symmetry and for
    /// tests that catch the panic).
    pub violations: u64,
}

impl AuditSnapshot {
    /// The counter deltas accumulated since `earlier`.
    pub fn since(&self, earlier: &AuditSnapshot) -> AuditSnapshot {
        AuditSnapshot {
            queue_checks: self.queue_checks - earlier.queue_checks,
            oracle_checks: self.oracle_checks - earlier.oracle_checks,
            tcp_checks: self.tcp_checks - earlier.tcp_checks,
            event_checks: self.event_checks - earlier.event_checks,
            calendar_checks: self.calendar_checks - earlier.calendar_checks,
            violations: self.violations - earlier.violations,
        }
    }

    /// Total checks of all kinds.
    pub fn total_checks(&self) -> u64 {
        self.queue_checks
            + self.oracle_checks
            + self.tcp_checks
            + self.event_checks
            + self.calendar_checks
    }
}

/// Read the global audit counters.
pub fn snapshot() -> AuditSnapshot {
    AuditSnapshot {
        queue_checks: QUEUE_CHECKS.load(Ordering::Relaxed),
        oracle_checks: ORACLE_CHECKS.load(Ordering::Relaxed),
        tcp_checks: TCP_CHECKS.load(Ordering::Relaxed),
        event_checks: EVENT_CHECKS.load(Ordering::Relaxed),
        calendar_checks: CALENDAR_CHECKS.load(Ordering::Relaxed),
        violations: VIOLATIONS.load(Ordering::Relaxed),
    }
}

/// Record an invariant violation and panic with the reproducer text.
///
/// Callers embed everything needed to replay the failure: the simulation
/// seed, the event index at which the check fired, and a dump of the
/// diverging state.
#[cold]
pub fn violation(subsystem: &str, detail: std::fmt::Arguments<'_>) -> ! {
    VIOLATIONS.fetch_add(1, Ordering::Relaxed);
    panic!("audit violation [{subsystem}]: {detail}");
}

/// Tolerant float comparison for differential oracles: the optimized and
/// reference implementations compute algebraically equal expressions that
/// differ in floating-point rounding, so exact equality is too strict.
/// The EWMA/integrator recursions under audit are contractive, keeping
/// the accumulated divergence far below this bound.
#[inline]
pub fn close(a: f64, b: f64) -> bool {
    if a == b {
        return true; // covers ±0 and exact matches
    }
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

/// [`close`] lifted to optional values (`None` must match `None`).
#[inline]
pub fn close_opt(a: Option<f64>, b: Option<f64>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => close(x, y),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_deltas_accumulate() {
        let before = snapshot();
        count_queue_checks(3);
        count_oracle_checks(2);
        count_tcp_checks(1);
        count_event_checks(5);
        count_calendar_checks(4);
        let delta = snapshot().since(&before);
        // Other tests in the process may also count; deltas are at least
        // what we added.
        assert!(delta.queue_checks >= 3);
        assert!(delta.oracle_checks >= 2);
        assert!(delta.tcp_checks >= 1);
        assert!(delta.event_checks >= 5);
        assert!(delta.calendar_checks >= 4);
        assert!(delta.total_checks() >= 15);
    }

    #[test]
    fn violation_panics_and_counts() {
        let before = snapshot().violations;
        let caught = std::panic::catch_unwind(|| {
            violation("test", format_args!("seed=1 event=2"));
        });
        let err = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(err.contains("audit violation [test]: seed=1 event=2"));
        assert!(snapshot().violations > before);
    }

    #[test]
    fn tolerant_comparison() {
        assert!(close(1.0, 1.0 + 1e-12));
        assert!(!close(1.0, 1.0 + 1e-6));
        assert!(close(0.0, 0.0));
        assert!(close(1e12, 1e12 * (1.0 + 1e-10)));
        assert!(close_opt(None, None));
        assert!(close_opt(Some(2.0), Some(2.0)));
        assert!(!close_opt(Some(2.0), None));
    }

    // NOTE: no test flips `set_enabled` — tests share one process and the
    // flag is global; the debug-build default (on) is what `cargo test`
    // relies on.
}
