//! Naive, straight-line transcriptions of the audited papers' update
//! equations, used as differential oracles against the optimized
//! implementations in `netsim::queue` and [`crate::pert`].
//!
//! Each reference is deliberately written in the *textbook* form of its
//! equation — no incremental rewrites, no shared state with the audited
//! code — so that a transcription error in the optimized path cannot be
//! mirrored here. Where the optimized code uses an algebraically equal
//! but differently rounded expression (e.g. RED's `avg += w·(q − avg)`
//! versus the paper's `avg ← (1−w)·avg + w·q`), the oracle comparison
//! uses [`crate::audit::close`]; where the expressions are identical the
//! match is exact.
//!
//! Time enters as raw simulator nanoseconds (`u64`) and is converted to
//! seconds with the same `ns as f64 / 1e9` division the simulator's
//! `SimTime::as_secs_f64` uses, so idle-decay inputs are bit-identical.

/// Straight-line RED (Floyd & Jacobson 1993, with the *gentle* extension
/// and ns-2's idle compensation): average-queue EWMA plus the piecewise
/// marking-probability curve.
#[derive(Clone, Debug)]
pub struct RedReference {
    /// EWMA weight `w_q`.
    pub w_q: f64,
    /// Lower average-queue threshold (packets).
    pub min_th: f64,
    /// Upper average-queue threshold (packets).
    pub max_th: f64,
    /// Gentle slope between `max_th` and `2·max_th`.
    pub gentle: bool,
    /// Mean packet transmission time, seconds (idle compensation unit).
    pub mean_pkt_secs: f64,
    avg: f64,
    idle_since_ns: Option<u64>,
}

impl RedReference {
    /// Start with an empty, idle-since-t=0 queue, mirroring `RedQueue`.
    pub fn new(w_q: f64, min_th: f64, max_th: f64, gentle: bool, mean_pkt_secs: f64) -> Self {
        RedReference {
            w_q,
            min_th,
            max_th,
            gentle,
            mean_pkt_secs,
            avg: 0.0,
            idle_since_ns: Some(0),
        }
    }

    /// Per-arrival average update, RED paper §4 / ns-2 `estimator`:
    ///
    /// ```text
    /// if idle:  avg ← (1 − w_q)^m · avg,   m = idle_time / s   (s = mean pkt time)
    /// avg ← (1 − w_q)·avg + w_q·q
    /// ```
    ///
    /// `q` is the occupancy *before* this packet is stored. Returns the
    /// updated average.
    pub fn on_arrival(&mut self, now_ns: u64, q: usize) -> f64 {
        if let Some(idle_start) = self.idle_since_ns.take() {
            let idle = (now_ns - idle_start) as f64 / 1e9;
            let m = idle / self.mean_pkt_secs.max(1e-12);
            self.avg *= (1.0 - self.w_q).powf(m);
        }
        self.avg = (1.0 - self.w_q) * self.avg + self.w_q * q as f64;
        self.avg
    }

    /// Record the start of an idle period (queue drained to empty, or an
    /// arrival was rejected while the queue was empty).
    pub fn on_idle_start(&mut self, now_ns: u64) {
        self.idle_since_ns = Some(now_ns);
    }

    /// The piecewise initial marking probability `p_b` of the current
    /// average, straight from the papers:
    ///
    /// ```text
    /// avg < min_th                 → 0
    /// min_th ≤ avg < max_th        → max_p·(avg − min_th)/(max_th − min_th)
    /// max_th ≤ avg < 2·max_th      → max_p + (1 − max_p)·(avg − max_th)/max_th   (gentle)
    /// otherwise                    → forced drop (None)
    /// ```
    ///
    /// `max_p` is passed in because Adaptive RED mutates it at runtime.
    pub fn marking_probability(&self, max_p: f64) -> Option<f64> {
        if self.avg < self.min_th {
            Some(0.0)
        } else if self.avg < self.max_th {
            Some(max_p * (self.avg - self.min_th) / (self.max_th - self.min_th))
        } else if self.gentle && self.avg < 2.0 * self.max_th {
            Some(max_p + (1.0 - max_p) * (self.avg - self.max_th) / self.max_th)
        } else {
            None
        }
    }

    /// Current reference average queue length.
    pub fn avg(&self) -> f64 {
        self.avg
    }

    /// Whether the reference believes the queue is idle.
    pub fn is_idle(&self) -> bool {
        self.idle_since_ns.is_some()
    }
}

/// Straight-line PI controller (Hollot et al., INFOCOM 2001, eq. for the
/// discretized controller):
///
/// ```text
/// p(kT) = p((k−1)T) + a·(q(kT) − q_ref) − b·(q((k−1)T) − q_ref)
/// ```
#[derive(Clone, Debug)]
pub struct PiReference {
    /// Coefficient on the current error sample.
    pub a: f64,
    /// Coefficient on the previous error sample.
    pub b: f64,
    /// Queue-length setpoint.
    pub q_ref: f64,
    p: f64,
    q_old: f64,
}

impl PiReference {
    /// Start with `p = 0` and zero error history, mirroring `PiQueue`.
    pub fn new(a: f64, b: f64, q_ref: f64) -> Self {
        PiReference {
            a,
            b,
            q_ref,
            p: 0.0,
            q_old: q_ref,
        }
    }

    /// One sampling-instant update with the instantaneous queue length
    /// `q`; probabilities are clamped to `[0, 1]`. Returns the new `p`.
    pub fn tick(&mut self, q: f64) -> f64 {
        self.p = (self.p + self.a * (q - self.q_ref) - self.b * (self.q_old - self.q_ref))
            .clamp(0.0, 1.0);
        self.q_old = q;
        self.p
    }

    /// Current marking probability.
    pub fn probability(&self) -> f64 {
        self.p
    }
}

/// Straight-line REM (Athuraliya, Li, Low & Yin, IEEE Network 2001):
///
/// ```text
/// price ← max(0, price + γ·(α·(q − q*) + q − q_prev))
/// p     = 1 − φ^(−price)
/// ```
#[derive(Clone, Debug)]
pub struct RemReference {
    /// Price step γ.
    pub gamma: f64,
    /// Backlog weight α.
    pub alpha_w: f64,
    /// Marking base φ.
    pub phi: f64,
    /// Target backlog `q*`.
    pub q_ref: f64,
    price: f64,
    q_prev: f64,
}

impl RemReference {
    /// Start with zero price and no backlog history, mirroring `RemQueue`.
    pub fn new(gamma: f64, alpha_w: f64, phi: f64, q_ref: f64) -> Self {
        RemReference {
            gamma,
            alpha_w,
            phi,
            q_ref,
            price: 0.0,
            q_prev: 0.0,
        }
    }

    /// One price-update period with the instantaneous queue length `q`.
    /// Returns the new price.
    pub fn tick(&mut self, q: f64) -> f64 {
        self.price = (self.price
            + self.gamma * (self.alpha_w * (q - self.q_ref) + (q - self.q_prev)))
            .max(0.0);
        self.q_prev = q;
        self.price
    }

    /// Current price.
    pub fn price(&self) -> f64 {
        self.price
    }

    /// Current marking probability `1 − φ^(−price)`.
    pub fn probability(&self) -> f64 {
        1.0 - self.phi.powf(-self.price)
    }
}

/// Straight-line `srtt_0.99` / propagation-delay tracking from PERT §3:
///
/// ```text
/// srtt ← α·srtt + (1 − α)·rtt      (first sample initializes)
/// prop ← min(prop, rtt)
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PertReference {
    /// History weight α (the paper uses 0.99).
    pub weight: f64,
    srtt: Option<f64>,
    min_rtt: Option<f64>,
}

impl PertReference {
    /// Start with no samples, mirroring `PertController::new`.
    pub fn new(weight: f64) -> Self {
        PertReference {
            weight,
            srtt: None,
            min_rtt: None,
        }
    }

    /// Fold in one RTT sample.
    pub fn on_sample(&mut self, rtt: f64) {
        self.srtt = Some(match self.srtt {
            None => rtt,
            Some(s) => self.weight * s + (1.0 - self.weight) * rtt,
        });
        self.min_rtt = Some(match self.min_rtt {
            None => rtt,
            Some(m) => m.min(rtt),
        });
    }

    /// Reference smoothed RTT.
    pub fn srtt(&self) -> Option<f64> {
        self.srtt
    }

    /// Reference propagation-delay estimate.
    pub fn min_rtt(&self) -> Option<f64> {
        self.min_rtt
    }
}

/// Straight-line CUBIC window function (RFC 9438 §4.1–4.3):
///
/// ```text
/// K         = cubic_root((W_max − cwnd_epoch) / C)
/// W_cubic(t) = C·(t − K)³ + W_max
/// ```
///
/// with fast convergence (§4.6) on a new congestion event:
///
/// ```text
/// W_max ← cwnd·(1 + β)/2   if cwnd < W_max   (else W_max ← cwnd)
/// ```
///
/// The reference recomputes `K` and the cubic curve fresh from the epoch
/// inputs on every query; the optimized implementation caches `K` at
/// epoch start and is compared against this each ACK under `--audit`.
#[derive(Clone, Copy, Debug)]
pub struct CubicReference {
    /// The cubic scaling constant `C` (RFC 9438 uses 0.4).
    pub c: f64,
    /// The multiplicative-decrease factor `β` (RFC 9438 uses 0.7).
    pub beta: f64,
}

impl CubicReference {
    /// A reference with the given constants.
    pub fn new(c: f64, beta: f64) -> Self {
        CubicReference { c, beta }
    }

    /// The time-to-origin `K` for an epoch that starts at window
    /// `cwnd_epoch` below plateau `w_max`.
    pub fn k(&self, w_max: f64, cwnd_epoch: f64) -> f64 {
        ((w_max - cwnd_epoch).max(0.0) / self.c).cbrt()
    }

    /// The cubic window at `t` seconds into the epoch.
    pub fn w_cubic(&self, t: f64, w_max: f64, cwnd_epoch: f64) -> f64 {
        self.c * (t - self.k(w_max, cwnd_epoch)).powi(3) + w_max
    }

    /// The new plateau after a congestion event at window `cwnd`, with
    /// fast convergence against the previous plateau `w_max_prev`.
    pub fn w_max_after_loss(&self, cwnd: f64, w_max_prev: f64) -> f64 {
        if cwnd < w_max_prev {
            cwnd * (1.0 + self.beta) / 2.0
        } else {
            cwnd
        }
    }

    /// The AIMD-friendly additive-increase factor `α` (RFC 9438 §4.3).
    pub fn aimd_alpha(&self) -> f64 {
        3.0 * (1.0 - self.beta) / (1.0 + self.beta)
    }
}

/// Straight-line BBR model arithmetic (Cardwell et al., "BBR:
/// Congestion-Based Congestion Control", ACM Queue 2016): the bottleneck
/// bandwidth is the *maximum* delivery-rate sample over a sliding window
/// of packet-timed rounds, and the congestion window is a gain on the
/// bandwidth-delay product:
///
/// ```text
/// btlbw      = max{ rate(r) : r > round − W }
/// cwnd(gain) = max(gain · btlbw · min_rtt, 4)
/// ```
///
/// The reference keeps every in-window sample and rescans for the max;
/// the optimized implementation uses a monotonic deque and is compared
/// against this each round under `--audit`.
#[derive(Clone, Debug, Default)]
pub struct BbrReference {
    /// Filter window, rounds (BBR uses 10).
    pub window_rounds: u64,
    samples: Vec<(u64, f64)>,
}

impl BbrReference {
    /// An empty filter over `window_rounds` rounds.
    pub fn new(window_rounds: u64) -> Self {
        BbrReference {
            window_rounds,
            samples: Vec::new(),
        }
    }

    /// Record one per-round delivery-rate sample and return the reference
    /// windowed maximum.
    pub fn on_rate_sample(&mut self, round: u64, rate: f64) -> f64 {
        self.samples.push((round, rate));
        self.samples
            .retain(|&(r, _)| r + self.window_rounds > round);
        self.max_rate()
    }

    /// The reference windowed maximum (0 when empty).
    pub fn max_rate(&self) -> f64 {
        self.samples.iter().fold(0.0, |m, &(_, v)| m.max(v))
    }

    /// The reference congestion window for a bandwidth-delay product.
    pub fn cwnd_for(gain: f64, btlbw: f64, min_rtt: f64) -> f64 {
        (gain * btlbw * min_rtt).max(4.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn red_ewma_converges_to_constant_queue() {
        let mut r = RedReference::new(0.1, 5.0, 15.0, true, 1e-4);
        for _ in 0..500 {
            r.on_arrival(0, 10);
        }
        assert!((r.avg() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn red_idle_decay_shrinks_avg() {
        let mut r = RedReference::new(0.002, 5.0, 15.0, true, 1e-4);
        for _ in 0..5_000 {
            r.on_arrival(0, 20);
        }
        let before = r.avg();
        r.on_idle_start(0);
        // One second idle at a 100 µs mean packet time = 10 000 drain slots.
        r.on_arrival(1_000_000_000, 0);
        assert!(r.avg() < before * 0.5, "{} !< {}", r.avg(), before);
    }

    #[test]
    fn red_probability_piecewise() {
        let mut r = RedReference::new(1.0, 5.0, 15.0, true, 1e-4);
        // w_q = 1 → avg equals the offered occupancy exactly.
        r.on_arrival(0, 4);
        assert_eq!(r.marking_probability(0.1), Some(0.0));
        r.on_arrival(0, 10);
        assert!((r.marking_probability(0.1).unwrap() - 0.05).abs() < 1e-12);
        r.on_arrival(0, 15);
        assert!((r.marking_probability(0.1).unwrap() - 0.1).abs() < 1e-12);
        // Gentle midpoint 22.5: 0.1 + 0.9·0.5 = 0.55.
        r.on_arrival(0, 22);
        let p = r.marking_probability(0.1).unwrap();
        assert!((p - (0.1 + 0.9 * 7.0 / 15.0)).abs() < 1e-12);
        r.on_arrival(0, 31);
        assert_eq!(r.marking_probability(0.1), None);
        // Sharp mode forces at max_th already.
        let mut sharp = RedReference::new(1.0, 5.0, 15.0, false, 1e-4);
        sharp.on_arrival(0, 16);
        assert_eq!(sharp.marking_probability(0.1), None);
    }

    #[test]
    fn pi_integrates_standing_error() {
        let mut p = PiReference::new(1.822e-5, 1.816e-5, 50.0);
        for _ in 0..1_000 {
            p.tick(150.0);
        }
        // Standing +100-packet error integrates at (a−b)·err per tick…
        assert!(p.probability() > 0.0);
        // …and unwinds again below the setpoint.
        let high = p.probability();
        for _ in 0..10_000 {
            p.tick(0.0);
        }
        assert!(p.probability() < high);
        assert!((0.0..=1.0).contains(&p.probability()));
    }

    #[test]
    fn rem_price_law() {
        let mut r = RemReference::new(0.05, 0.1, 2.0, 10.0);
        assert_eq!(r.probability(), 0.0);
        r.tick(30.0); // price = 0.05·(0.1·20 + 30) = 1.6
        assert!((r.price() - 1.6).abs() < 1e-12);
        // φ = 2, price = 1 → p = 1/2.
        let mut unit = RemReference::new(1.0, 1.0, 2.0, 0.0);
        unit.tick(0.5); // price = 0.5 + 0.5 = 1.0
        assert!((unit.probability() - 0.5).abs() < 1e-12);
        // Price never goes negative.
        let mut neg = RemReference::new(1.0, 1.0, 2.0, 100.0);
        neg.tick(0.0);
        assert_eq!(neg.price(), 0.0);
    }

    #[test]
    fn cubic_curve_textbook_points() {
        let r = CubicReference::new(0.4, 0.7);
        // Epoch from cwnd = β·W_max: K = cbrt(W_max·(1−β)/C).
        let w_max = 100.0;
        let cwnd = 70.0;
        let k = r.k(w_max, cwnd);
        assert!((k - (100.0 * 0.3 / 0.4f64).cbrt()).abs() < 1e-12);
        // At t = K the curve is back at the plateau.
        assert!((r.w_cubic(k, w_max, cwnd) - w_max).abs() < 1e-9);
        // At t = 0 it starts at the reduced window.
        assert!((r.w_cubic(0.0, w_max, cwnd) - cwnd).abs() < 1e-9);
        // Fast convergence shrinks the plateau when losing below it.
        assert!((r.w_max_after_loss(50.0, 100.0) - 42.5).abs() < 1e-12);
        assert_eq!(r.w_max_after_loss(120.0, 100.0), 120.0);
        // RFC 9438 α for β = 0.7 is 9/17.
        assert!((r.aimd_alpha() - 3.0 * 0.3 / 1.7).abs() < 1e-12);
    }

    #[test]
    fn bbr_windowed_max_expires_old_rounds() {
        let mut f = BbrReference::new(3);
        assert_eq!(f.on_rate_sample(0, 10.0), 10.0);
        assert_eq!(f.on_rate_sample(1, 5.0), 10.0);
        assert_eq!(f.on_rate_sample(2, 7.0), 10.0);
        // Round 3 expires the round-0 peak: max of {5, 7, 6}.
        assert_eq!(f.on_rate_sample(3, 6.0), 7.0);
        assert_eq!(BbrReference::cwnd_for(2.0, 100.0, 0.05), 10.0);
        // The floor of 4 segments engages at tiny BDPs.
        assert_eq!(BbrReference::cwnd_for(2.0, 10.0, 0.001), 4.0);
    }

    #[test]
    fn pert_srtt_and_min_track_paper_form() {
        let mut p = PertReference::new(0.99);
        assert_eq!(p.srtt(), None);
        p.on_sample(0.060);
        assert_eq!(p.srtt(), Some(0.060));
        assert_eq!(p.min_rtt(), Some(0.060));
        p.on_sample(0.100);
        assert!((p.srtt().unwrap() - (0.99 * 0.060 + 0.01 * 0.100)).abs() < 1e-15);
        assert_eq!(p.min_rtt(), Some(0.060));
    }
}
