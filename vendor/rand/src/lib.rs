//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors exactly the surface it uses:
//!
//! * [`SeedableRng::seed_from_u64`] — the rand_core 0.6 construction
//!   (a PCG32 stream expands the `u64` into the seed bytes);
//! * [`rngs::SmallRng`] — xoshiro256++, the algorithm rand 0.8 selects
//!   for `SmallRng` on 64-bit targets;
//! * [`Rng::gen`] — uniform sampling of the "standard" distribution for
//!   the primitive types the simulator draws (`f64` in `[0, 1)` from 53
//!   high bits, plus integers and `bool` for completeness).
//!
//! Everything is deterministic and dependency-free; the simulator's
//! reproducibility guarantees rest on this module being stable.

#![forbid(unsafe_code)]

/// A random number generator core: the two output primitives every
/// distribution is built from.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with the same PCG32 stream
    /// rand_core 0.6 uses, so seeds produce the identical generator
    /// state the real crate would.
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            // Advance the state first, in case the input has low
            // Hamming weight.
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let bytes = pcg32(&mut state);
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable from the "standard" distribution by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` from the high 53 bits (rand 0.8's
    /// `Standard` for `f64`).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` from the high 24 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p = {p} out of range");
        self.gen::<f64>() < p
    }

    /// Uniform `f64` in `[low, high)`.
    fn gen_range_f64(&mut self, low: f64, high: f64) -> f64 {
        low + (high - low) * self.gen::<f64>()
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind rand 0.8's `SmallRng` on
    /// 64-bit platforms. Fast, small, and statistically strong for
    /// simulation workloads (not cryptographic).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            // Upper bits have the best statistical quality.
            (self.next_u64() >> 32) as u32
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9e3779b97f4a7c15,
                    0x6a09e667f3bcc909,
                    0xbb67ae8584caa73b,
                    0x3c6ef372fe94f82b,
                ];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<f64> = (0..16).map(|_| a.gen::<f64>()).collect();
        let ys: Vec<f64> = (0..16).map(|_| b.gen::<f64>()).collect();
        let zs: Vec<f64> = (0..16).map(|_| c.gen::<f64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }
}
