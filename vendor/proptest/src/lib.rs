//! Offline vendored subset of the `proptest` 1.x API.
//!
//! The build environment has no access to crates.io, so this crate
//! implements exactly the surface the workspace's property tests use:
//!
//! * the [`proptest!`] macro (`fn name(pat in strategy, ...) { body }`);
//! * [`Strategy`] with [`Strategy::prop_map`] and
//!   [`Strategy::prop_flat_map`];
//! * range strategies (`0u64..100`, `0.1f64..2.0`), tuple strategies,
//!   [`Just`], [`any`], and [`collection::vec`];
//! * [`prop_oneof!`] with optional weights;
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Differences from the real crate, deliberate for an air-gapped build:
//! no shrinking (a failing case panics with the generated values via the
//! assert message), and case generation is *deterministic* — seeded from
//! the test's module path and name — so failures reproduce exactly under
//! `cargo test`. The case count defaults to 256 and can be overridden
//! with the `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]

use std::ops::Range;

pub mod test_runner {
    //! The deterministic random source driving value generation.

    /// Splitmix64-seeded xoshiro256++ generator (same family the
    //  simulator's vendored `rand` uses).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Build the rng for one `(test, case)` pair. FNV-1a over the
        /// test name mixes with the case index so every case draws an
        /// independent, reproducible stream.
        pub fn deterministic(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
            h ^= u64::from(case).wrapping_mul(0x9e3779b97f4a7c15);
            let mut s = [0u64; 4];
            for word in &mut s {
                // splitmix64 expansion.
                h = h.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = h;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                *word = z ^ (z >> 31);
            }
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            TestRng { s }
        }

        /// Next 64 uniformly random bits (xoshiro256++).
        pub fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Modulo bias is irrelevant at test-generation quality.
            self.next_u64() % n
        }
    }
}

use test_runner::TestRng;

/// The number of cases each `proptest!` test runs (default 256,
/// overridable via `PROPTEST_CASES`).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// A generator of test values.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` derives
    /// from it (dependent generation).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty as $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}

signed_range_strategy!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical full-range strategy (the [`any`] function).
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (full value range).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod strategy {
    //! Strategy combinator support types.

    use super::test_runner::TestRng;
    use super::{BoxedStrategy, Strategy};

    /// Weighted choice among boxed strategies (built by `prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Build from `(weight, strategy)` arms.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs positive total weight");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < u64::from(*w) {
                    return s.generate(rng);
                }
                pick -= u64::from(*w);
            }
            unreachable!("weights exhausted")
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::test_runner::TestRng;
    use super::Strategy;
    use std::ops::Range;

    /// Anything usable as a collection size: a fixed size or a range.
    pub trait SizeRange {
        /// Draw a size.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(strategy, 1..300)` — vectors of generated elements.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

/// Run `body` for each generated case, like the real `proptest!`.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = $crate::cases();
                for __case in 0..__cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Weighted (or unweighted) choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Assert within a property (no shrinking: panics immediately).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::collection;
    pub use crate::strategy;
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("t", 0);
        for _ in 0..1000 {
            let x = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let s = (1usize..4).generate(&mut rng);
            assert!((1..4).contains(&s));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::deterministic("t2", 1);
        for _ in 0..200 {
            let v = collection::vec(0u32..10, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn oneof_weights_cover_all_arms() {
        let s = prop_oneof![
            1 => Just(0u8),
            3 => Just(1u8),
        ];
        let mut rng = TestRng::deterministic("t3", 2);
        let mut seen = [0usize; 2];
        for _ in 0..1000 {
            seen[s.generate(&mut rng) as usize] += 1;
        }
        assert!(seen[0] > 100 && seen[1] > 500, "{seen:?}");
    }

    #[test]
    fn deterministic_generation() {
        let gen = |case| {
            let mut rng = TestRng::deterministic("same", case);
            collection::vec(0u64..1000, 5..20).generate(&mut rng)
        };
        assert_eq!(gen(0), gen(0));
        assert_ne!(gen(0), gen(1));
    }

    proptest! {
        /// The macro itself: patterns, multiple bindings, trailing comma.
        #[test]
        fn macro_smoke(x in 0u64..50, (a, b) in (0u32..10, 0u32..10), mut v in collection::vec(any::<bool>(), 1..5)) {
            prop_assert!(x < 50);
            prop_assert!(a < 10 && b < 10);
            v.push(true);
            prop_assert!(!v.is_empty());
        }
    }
}
