//! Offline vendored subset of the `criterion` 0.5 API.
//!
//! The build environment has no registry access, so this crate provides
//! the surface the workspace's benches use — [`Criterion`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`Bencher::iter_batched`], [`criterion_group!`],
//! [`criterion_main!`] — backed by a simple wall-clock harness.
//!
//! Methodology (simpler than the real crate, same shape): each benchmark
//! warms up for `warm_up_time`, then runs `sample_size` samples for
//! roughly `measurement_time` total and reports the median per-iteration
//! time with the min/max spread. There is no statistical regression
//! analysis, plotting, or saved baselines — numbers print to stdout.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export so `use criterion::black_box` keeps working alongside
/// `std::hint::black_box`.
pub use std::hint::black_box;

/// How [`Bencher::iter_batched`] groups setup outputs per timing batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// One setup per small batch of iterations.
    SmallInput,
    /// One setup per large batch of iterations.
    LargeInput,
    /// One setup per single iteration.
    PerIteration,
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over `self.iters` iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with untimed per-iteration `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    /// Like [`Bencher::iter_batched`] but passing the input by reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Benchmark harness configuration and entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    /// Number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Target total measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for CLI compatibility; the shim has no external config.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(self, id, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// No-op in the shim (the real crate prints a summary).
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Per-group sample-size override.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Per-group measurement-time override.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_bench(self.criterion, &full, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(config: &Criterion, id: &str, mut f: F) {
    // Warm-up: discover how many iterations fit in the warm-up window
    // so the sample loop can target the measurement time.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < config.warm_up_time {
        f(&mut b);
        warm_iters += b.iters;
        // Grow geometrically so cheap routines don't spin on overhead.
        b.iters = (b.iters * 2).min(1 << 20);
    }
    let warm_elapsed = warm_start.elapsed().max(Duration::from_nanos(1));
    let per_iter = warm_elapsed.as_secs_f64() / warm_iters.max(1) as f64;

    // Sampling: sample_size samples splitting the measurement budget.
    let per_sample = config.measurement_time.as_secs_f64() / config.sample_size as f64;
    let iters_per_sample = ((per_sample / per_iter).round() as u64).max(1);
    let mut samples = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        b.iters = iters_per_sample;
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    println!(
        "{:<40} time: [{} {} {}]  ({} samples x {} iters)",
        id,
        fmt_time(lo),
        fmt_time(median),
        fmt_time(hi),
        config.sample_size,
        iters_per_sample,
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.3} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.3} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{:.3} s", secs)
    }
}

/// Declare a group of benchmark functions, like the real crate.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut count = 0u64;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn iter_batched_calls_setup_per_iteration() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(4));
        let mut setups = 0u64;
        let mut runs = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    7u64
                },
                |x| {
                    runs += 1;
                    x * 2
                },
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, runs);
        assert!(runs > 0);
    }

    #[test]
    fn groups_compose_names() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut g = c.benchmark_group("grp");
        let mut hits = 0u64;
        g.bench_function("inner", |b| b.iter(|| hits += 1));
        g.finish();
        assert!(hits > 0);
    }
}
