//! # pert — Probabilistic Early Response TCP
//!
//! A full reproduction of *"Emulating AQM from End Hosts"* (Bhandarkar,
//! Reddy, Zhang, Loguinov — SIGCOMM 2007) as a Rust workspace, re-exported
//! here as a single facade:
//!
//! * [`core`] (`pert-core`) — the PERT algorithms: the `srtt_0.99`
//!   congestion signal, the predictor zoo of §2, the gentle-RED response
//!   curve, and the PERT and PERT/PI per-flow controllers;
//! * [`netsim`] — a deterministic packet-level network simulator with
//!   DropTail / RED / Adaptive-RED / PI queues and ECN;
//! * [`tcp`] (`pert-tcp`) — SACK, Vegas, PERT, and PERT/PI senders plus
//!   per-packet-ACK sinks over `netsim`;
//! * [`workload`] — heavy-tailed web sessions, dumbbell and
//!   multi-bottleneck scenario builders, and the measurement protocol;
//! * [`stats`] (`sim-stats`) — Jain fairness, transition analysis,
//!   histograms;
//! * [`fluid`] — DDE fluid models (eq. 14) and the Theorem 1/2 stability
//!   calculators;
//! * [`experiments`] — one module per table/figure of the paper.
//!
//! ## Quick start
//!
//! ```
//! use pert::core::{PertController, PertParams};
//!
//! // Drive PERT from any per-ACK RTT stream:
//! let mut pert = PertController::new(PertParams::default(), 1);
//! let mut cwnd: f64 = 10.0;
//! for ack in 0..1000 {
//!     let now = ack as f64 * 0.01;
//!     let rtt = 0.060 + 0.0001 * (ack % 50) as f64;
//!     if let Some(resp) = pert.on_ack(now, rtt) {
//!         cwnd = (cwnd * (1.0 - resp.factor)).max(1.0);
//!     } else {
//!         cwnd += 1.0 / cwnd;
//!     }
//! }
//! assert!(cwnd >= 1.0);
//! ```
//!
//! See `examples/` for simulator-level usage and the `experiments` binary
//! for the paper's tables and figures.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use experiments;
pub use fluid;
pub use netsim;
pub use pert_core as core;
pub use pert_tcp as tcp;
pub use sim_stats as stats;
pub use workload;
