//! Custom predictor: extending the §2 predictor framework.
//!
//! Implements a new congestion predictor (a median-of-window detector)
//! against the `pert-core` `Predictor` trait, then scores it side by side
//! with the paper's battery on a simulated trace using the transition
//! analyzer — the workflow behind Figure 3, applied to your own idea.
//!
//! Run with: `cargo run --release --example custom_predictor`

use pert::core::predictors::{AckSample, CongestionState, Predictor};
use pert::experiments::cases::{run_case, HIGH_RTT_THRESHOLD};
use pert::experiments::common::Scale;
use pert::experiments::fig3::{predictor_battery, PREDICTOR_NAMES};
use pert::stats::analyze;

/// Flags congestion when the *median* of the last `window` RTT samples
/// exceeds a threshold — more robust to single spikes than the mean, at
/// the cost of a sort per evaluation.
struct MedianRtt {
    window: Vec<f64>,
    size: usize,
    threshold: f64,
}

impl MedianRtt {
    fn new(size: usize, threshold: f64) -> Self {
        MedianRtt {
            window: Vec::with_capacity(size),
            size,
            threshold,
        }
    }
}

impl Predictor for MedianRtt {
    fn on_sample(&mut self, s: &AckSample) -> CongestionState {
        if self.window.len() == self.size {
            self.window.remove(0);
        }
        self.window.push(s.rtt);
        let mut sorted = self.window.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite RTTs"));
        let median = sorted[sorted.len() / 2];
        if median > self.threshold {
            CongestionState::High
        } else {
            CongestionState::Low
        }
    }

    fn name(&self) -> &'static str {
        "median-rtt"
    }

    fn reset(&mut self) {
        self.window.clear();
    }
}

fn main() {
    println!("generating a trace (one section-2.2 style case)...");
    let trace = run_case("demo", 16, 20, Scale::Quick, 3);
    println!(
        "  {} RTT samples, {} queue-level drops\n",
        trace.samples.len(),
        trace.queue_drops.len()
    );

    let mut contenders: Vec<(String, Box<dyn Predictor>)> = predictor_battery()
        .into_iter()
        .zip(PREDICTOR_NAMES)
        .map(|(p, n)| (n.to_string(), p))
        .collect();
    contenders.push((
        "median-rtt (custom)".into(),
        Box::new(MedianRtt::new(101, HIGH_RTT_THRESHOLD)),
    ));

    println!(
        "  {:<22} {:>10} {:>10} {:>10}",
        "predictor", "efficiency", "false-pos", "false-neg"
    );
    for (name, mut pred) in contenders {
        let states: Vec<(f64, bool)> = trace
            .samples
            .iter()
            .map(|s| (s.at, pred.on_sample(s) == CongestionState::High))
            .collect();
        let c = analyze(&states, &trace.queue_drops, 0.060);
        println!(
            "  {:<22} {:>10.3} {:>10.3} {:>10.3}",
            name,
            c.efficiency().unwrap_or(f64::NAN),
            c.false_positive_rate().unwrap_or(f64::NAN),
            c.false_negative_rate().unwrap_or(f64::NAN),
        );
    }

    println!("\n(efficiency = P(high-RTT episode precedes a queue loss); see paper section 2)");
}
