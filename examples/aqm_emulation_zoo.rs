//! The AQM-emulation zoo: one bottleneck, three end-host AQM emulations.
//!
//! The paper's closing claim is that PERT generalizes: "other AQM schemes
//! can be potentially emulated at the end-host". This example runs the
//! same dumbbell under PERT (gentle-RED emulation, §3), PERT/PI (§6),
//! and PERT/REM (§8 generalization, this repo's extension) — all over
//! plain DropTail routers — next to their three router-based references.
//!
//! Run with: `cargo run --release --example aqm_emulation_zoo`

use pert::netsim::SimDuration;
use pert::workload::{build_dumbbell, link_metrics, run_measured, DumbbellConfig, Scheme};

fn main() {
    println!("end-host AQM emulation vs router AQM — 50 Mbps, 60 ms RTT, 10 flows\n");
    println!(
        "  {:<14} {:>9} {:>10} {:>8}   router requirement",
        "scheme", "Q (norm)", "drop rate", "util %"
    );

    let pairs: [(Scheme, &str); 6] = [
        (Scheme::Pert, "none (DropTail)"),
        (Scheme::SackRedEcn, "Adaptive RED + ECN"),
        (Scheme::PertPi, "none (DropTail)"),
        (Scheme::SackPiEcn, "PI + ECN"),
        (Scheme::PertRem, "none (DropTail)"),
        (Scheme::SackRemEcn, "REM + ECN"),
    ];

    for (scheme, router) in pairs {
        let name = scheme.name();
        let cfg = DumbbellConfig {
            bottleneck_bps: 50_000_000,
            bottleneck_delay: SimDuration::from_millis(10),
            forward_rtts: vec![0.060; 10],
            start_window_secs: 5.0,
            seed: 21,
            ..DumbbellConfig::new(scheme)
        };
        let d = build_dumbbell(&cfg);
        let mut sim = d.sim;
        let (s, e) = run_measured(&mut sim, 15.0, 60.0);
        let m = link_metrics(&sim, d.bottleneck_fwd, s, e);
        println!(
            "  {:<14} {:>9.3} {:>10.2e} {:>8.1}   {router}",
            name, m.mean_queue_norm, m.drop_rate, m.utilization
        );
    }

    println!(
        "\nEach emulation pairs with the router AQM it imitates: similar queue and\n\
         drop behaviour, with the left column requiring zero router support."
    );
}
