//! AQM comparison: the paper's four schemes side by side on one
//! bottleneck.
//!
//! Uses the `workload` scenario builder and measurement protocol to
//! compare PERT, SACK/DropTail, SACK/RED-ECN and Vegas on a 50 Mbps /
//! 60 ms dumbbell with 10 long-term flows and 20 background web sessions
//! — a miniature of the paper's Figures 6–9 rows.
//!
//! Run with: `cargo run --release --example aqm_comparison`

use pert::netsim::SimDuration;
use pert::stats::jain_index;
use pert::tcp::TcpSender;
use pert::workload::{
    build_dumbbell, link_metrics, run_measured, snapshot_goodput, DumbbellConfig, Scheme,
};

fn main() {
    println!("scheme comparison — 50 Mbps, 60 ms RTT, 10 flows + 20 web sessions\n");
    println!(
        "  {:<14} {:>9} {:>10} {:>8} {:>6} {:>7}",
        "scheme", "Q (norm)", "drop rate", "util %", "Jain", "early"
    );

    for scheme in [
        Scheme::Pert,
        Scheme::SackDroptail,
        Scheme::SackRedEcn,
        Scheme::Vegas,
    ] {
        let name = scheme.name();
        let cfg = DumbbellConfig {
            bottleneck_bps: 50_000_000,
            bottleneck_delay: SimDuration::from_millis(10),
            forward_rtts: vec![0.060; 10],
            num_web_sessions: 20,
            start_window_secs: 5.0,
            seed: 7,
            ..DumbbellConfig::new(scheme)
        };
        let d = build_dumbbell(&cfg);
        let mut sim = d.sim;

        sim.run_until(pert::netsim::SimTime::from_secs_f64(15.0));
        let before = snapshot_goodput(&sim, &d.forward);
        let (start, end) = run_measured(&mut sim, 15.0, 60.0);
        let after = snapshot_goodput(&sim, &d.forward);

        let m = link_metrics(&sim, d.bottleneck_fwd, start, end);
        let jain = jain_index(&after.rates_since(&before));
        let early: u64 = d
            .forward
            .iter()
            .map(|c| sim.agent::<TcpSender>(c.sender).cc().early_reductions())
            .sum();

        println!(
            "  {:<14} {:>9.3} {:>10.2e} {:>8.1} {:>6.3} {:>7}",
            name, m.mean_queue_norm, m.drop_rate, m.utilization, jain, early
        );
    }

    println!(
        "\nExpected shape (paper Figs. 6-9): PERT ~ SACK/RED-ECN with low queue and\n\
         ~zero drops; SACK/DropTail holds a large standing queue; Vegas utilizes\n\
         highly but shares unfairly across staggered starts."
    );
}
