//! Web traffic: PERT long flows coexisting with bursty web sessions.
//!
//! Demonstrates the workload generator (Pareto pages, exponential think
//! times, after Feldmann et al.) and shows how the bottleneck queue and
//! the long flows' fairness hold up as the web load rises — a miniature
//! of the paper's Figure 9.
//!
//! Run with: `cargo run --release --example web_traffic`

use pert::netsim::SimDuration;
use pert::stats::jain_index;
use pert::workload::{
    build_dumbbell, link_metrics, run_measured, snapshot_goodput, DumbbellConfig, Scheme, WebParams,
};

fn main() {
    println!("PERT vs rising web load — 30 Mbps, 8 long-term flows\n");
    println!(
        "  {:>4}  {:>9} {:>10} {:>8} {:>6} {:>12}",
        "web", "Q (norm)", "drop rate", "util %", "Jain", "web pages/s"
    );

    for web_sessions in [0usize, 10, 40, 80] {
        let cfg = DumbbellConfig {
            bottleneck_bps: 30_000_000,
            bottleneck_delay: SimDuration::from_millis(10),
            forward_rtts: vec![0.060; 8],
            num_web_sessions: web_sessions,
            web: WebParams::default(),
            start_window_secs: 5.0,
            seed: 9,
            ..DumbbellConfig::new(Scheme::Pert)
        };
        let d = build_dumbbell(&cfg);
        let mut sim = d.sim;

        sim.run_until(pert::netsim::SimTime::from_secs_f64(15.0));
        let before = snapshot_goodput(&sim, &d.forward);
        let (start, end) = run_measured(&mut sim, 15.0, 60.0);
        let after = snapshot_goodput(&sim, &d.forward);

        let m = link_metrics(&sim, d.bottleneck_fwd, start, end);
        let jain = jain_index(&after.rates_since(&before));
        // Web activity: segments delivered by web senders over the window.
        let web_segs: u64 = d
            .web
            .iter()
            .map(|c| pert::tcp::sender_stats(&sim, c).acked_segments)
            .sum();
        let span = end.duration_since(start).as_secs_f64();

        println!(
            "  {:>4}  {:>9.3} {:>10.2e} {:>8.1} {:>6.3} {:>12.1}",
            web_sessions,
            m.mean_queue_norm,
            m.drop_rate,
            m.utilization,
            jain,
            web_segs as f64 / span / 12.0 // ÷ mean page → pages/s
        );
    }

    println!(
        "\nExpected shape (paper Fig. 9): the average queue stays low and losses\n\
         near zero as web load grows; long-flow fairness remains high."
    );
}
