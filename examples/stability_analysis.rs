//! Stability analysis: Theorem 1 and the fluid model, end to end.
//!
//! 1. Evaluates Theorem 1's sufficient condition across RTTs and locates
//!    the stability boundary for the paper's §5.3 configuration (171 ms).
//! 2. Integrates the PERT/RED fluid model (eq. 14) at three RTTs and
//!    prints compact trajectories, reproducing Figure 13(b)–(d).
//! 3. Prints the eq.-13 sampling-interval guideline (Figure 13a).
//!
//! Run with: `cargo run --release --example stability_analysis`

use pert::fluid::dde::{integrate, Method};
use pert::fluid::models::PertRedFluid;
use pert::fluid::stability;

fn main() {
    let l = stability::l_pert(0.1, 0.100, 0.050);
    let k = stability::lpf_k(0.99, 1.0e-4);
    let (c, n) = (100.0, 5.0);

    println!("Theorem 1 (paper section 5.3 configuration: C=100 pkt/s, N=5)");
    for r_ms in [100, 120, 140, 160, 170, 171, 172, 180] {
        let r = r_ms as f64 / 1e3;
        let (lhs, rhs) = stability::theorem1_sides(l, k, c, n, r);
        println!(
            "  R = {r_ms:>3} ms: LHS {lhs:.4} {} RHS {rhs:.4}",
            if lhs <= rhs { "<=" } else { "> " }
        );
    }
    let boundary = stability::theorem1_max_rtt(l, k, c, n);
    println!("  boundary: R = {:.1} ms (paper: 171 ms)\n", boundary * 1e3);

    println!("Fluid model (eq. 14) trajectories, W(t) in packets:");
    for r in [0.100, 0.160, 0.171] {
        let model = PertRedFluid::paper_section_5_3(r);
        let tr = integrate(
            &model,
            0.0,
            200.0,
            0.002,
            &[1.0, 1.0, 1.0],
            &|_, _| 1.0,
            Method::Rk4,
        );
        let (w_star, _) = model.equilibrium();
        print!("  R = {:>3.0} ms (W* = {w_star:.1}): ", r * 1e3);
        for t in [20.0, 60.0, 100.0, 140.0, 180.0] {
            let idx = (t / tr.h) as usize;
            print!("W({t:>3.0}s)={:>5.2}  ", tr.states[idx][0]);
        }
        println!();
    }
    println!(
        "  (paper: monotone at 100 ms, decaying oscillation at 160 ms, sustained at 171 ms)\n"
    );

    println!("Sampling-interval guideline (eq. 13; R=200 ms, C=1000 pkt/s):");
    let l13 = stability::l_pert(0.1, 0.100, 0.050);
    for n_min in [1.0, 5.0, 10.0, 20.0, 30.0, 40.0, 50.0] {
        let d = stability::min_delta(0.99, l13, 1000.0, n_min, 0.2);
        println!("  N- = {n_min:>4}: delta_min = {d:.4} s");
    }
    println!("  (paper Fig. 13a: decreasing, ~0.1 s at N- = 40)");
}
