//! Quickstart: four PERT flows over a DropTail bottleneck.
//!
//! Builds a 10 Mbps / 60 ms dumbbell directly against the `netsim` and
//! `pert-tcp` APIs (no scenario builder), runs 60 simulated seconds, and
//! prints per-flow goodput plus the bottleneck's queue/drop statistics —
//! the smallest end-to-end demonstration of PERT keeping a DropTail queue
//! short without router support.
//!
//! Run with: `cargo run --release --example quickstart`

use pert::netsim::prelude::*;
use pert::tcp::{connect, sender_cc, sender_stats, ConnectionSpec};

fn main() {
    // Topology: two hosts joined by a duplex 10 Mbps link with 30 ms
    // one-way delay (60 ms RTT) and a one-BDP (75-packet) buffer.
    let mut sim = Simulator::new(42);
    let left = sim.add_node();
    let right = sim.add_node();
    let (fwd, _rev) = sim.add_duplex_link(
        left,
        right,
        10_000_000,
        SimDuration::from_millis(30),
        |_| Box::new(DropTail::new(75)),
    );
    sim.compute_routes();

    // Four PERT flows, staggered starts.
    let conns: Vec<_> = (0..4)
        .map(|i| {
            let c = connect(
                &mut sim,
                ConnectionSpec::pert(FlowId(i), left, right, i as u64),
            );
            sim.schedule_agent_timer(
                SimTime::from_secs_f64(i as f64 * 0.5),
                c.sender,
                c.start_token,
            );
            c
        })
        .collect();

    // Warm up 10 s, then measure 50 s.
    sim.run_until(SimTime::from_secs_f64(10.0));
    sim.reset_measurements();
    let acked_at_start: Vec<u64> = conns
        .iter()
        .map(|c| sender_stats(&sim, c).acked_segments)
        .collect();
    sim.run_until(SimTime::from_secs_f64(60.0));
    sim.flush_measurements();

    println!("PERT quickstart — 10 Mbps, 60 ms RTT, 75-packet DropTail buffer\n");
    for (i, c) in conns.iter().enumerate() {
        let stats = sender_stats(&sim, c);
        let goodput_mbps = (stats.acked_segments - acked_at_start[i]) as f64 * 8000.0 / 50.0 / 1e6;
        println!(
            "  flow {i}: goodput {goodput_mbps:.2} Mbps, early reductions {}, loss events {}",
            sender_cc(&sim, c).early_reductions(),
            stats.loss_events
        );
    }

    let link = sim.link(fwd);
    let stats = link.queue.stats();
    println!(
        "\n  bottleneck: mean queue {:.1} pkts (of 75), drops {}, utilization {:.1}%",
        stats.mean_len(SimTime::from_secs_f64(10.0), SimTime::from_secs_f64(60.0)),
        stats.dropped,
        link.utilization_percent(SimDuration::from_secs(50))
    );
    println!("  (a SACK/DropTail run here keeps the queue near full and overflows periodically)");
}
